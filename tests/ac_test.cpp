// Aho-Corasick tests: trie construction, the three automaton variants
// (full-matrix, sparse failure-link, compressed interleaved), textbook
// cases, overlap semantics, randomized differential checks vs naive, and
// the lane-parallel batch kernel vs scalar full-table AC.
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "ac/ac_compact.hpp"
#include "ac/ac_full.hpp"
#include "ac/ac_sparse.hpp"
#include "ac/trie.hpp"
#include "helpers.hpp"
#include "simd/cpu_features.hpp"

namespace vpm::ac {
namespace {

using testutil::classic_set;
using testutil::expect_matches_naive;

TEST(Trie, StateCountMatchesDistinctPrefixes) {
  // he, she, his, hers -> root + h,e | s,h,e | i,s | r,s = 10 states.
  const Trie trie(classic_set());
  EXPECT_EQ(trie.state_count(), 10u);
}

TEST(Trie, RootFallbackOnUnknownByte) {
  const Trie trie(classic_set());
  EXPECT_EQ(trie.next_state(0, 'z'), 0u);
}

TEST(Trie, GotoFollowsPatternBytes) {
  const Trie trie(classic_set());
  std::uint32_t s = 0;
  for (char c : std::string("she")) {
    s = trie.next_state(s, static_cast<std::uint8_t>(c));
    EXPECT_NE(s, 0u);
  }
  // "she" end state must output both "she" and (via fail) "he".
  std::size_t outputs = 0;
  for (std::uint32_t n = s; n != kNoState; n = trie.nodes()[n].report_link) {
    outputs += trie.nodes()[n].outputs.size();
  }
  EXPECT_EQ(outputs, 2u);
}

template <typename M>
class AcVariants : public ::testing::Test {};

using Variants = ::testing::Types<AcFullMatcher, AcSparseMatcher, AcCompactMatcher>;
TYPED_TEST_SUITE(AcVariants, Variants);

TYPED_TEST(AcVariants, ClassicUshersExample) {
  pattern::PatternSet set;
  const auto he = set.add("he");
  const auto she = set.add("she");
  set.add("his");
  const auto hers = set.add("hers");
  const TypeParam m(set);
  const auto matches = m.find_matches(util::as_view("ushers"));
  // "ushers" contains she@1, he@2, hers@2; sorted by (id, pos):
  ASSERT_EQ(matches.size(), 3u);
  EXPECT_EQ(matches[0], (Match{he, 2}));
  EXPECT_EQ(matches[1], (Match{she, 1}));
  EXPECT_EQ(matches[2], (Match{hers, 2}));
}

TYPED_TEST(AcVariants, ClassicExampleAgainstOracle) {
  const auto set = classic_set();
  const TypeParam m(set);
  expect_matches_naive(m, set, util::as_view("ushers"));
  expect_matches_naive(m, set, util::as_view("shishers"));
  expect_matches_naive(m, set, util::as_view("hehehehe"));
}

TYPED_TEST(AcVariants, EmptyInputNoMatches) {
  const auto set = classic_set();
  const TypeParam m(set);
  EXPECT_EQ(m.count_matches({}), 0u);
}

TYPED_TEST(AcVariants, InputShorterThanAnyPattern) {
  pattern::PatternSet set;
  set.add("abcdef");
  const TypeParam m(set);
  EXPECT_EQ(m.count_matches(util::as_view("abc")), 0u);
}

TYPED_TEST(AcVariants, SingleBytePatterns) {
  pattern::PatternSet set;
  set.add("a");
  set.add("z");
  const TypeParam m(set);
  EXPECT_EQ(m.count_matches(util::as_view("banana")), 3u);
  expect_matches_naive(m, set, util::as_view("azazaz"));
}

TYPED_TEST(AcVariants, OverlappingOccurrences) {
  pattern::PatternSet set;
  set.add("aa");
  const TypeParam m(set);
  EXPECT_EQ(m.count_matches(util::as_view("aaaa")), 3u);
}

TYPED_TEST(AcVariants, PatternIsSuffixOfAnother) {
  pattern::PatternSet set;
  set.add("dabc");
  set.add("abc");
  set.add("bc");
  set.add("c");
  const TypeParam m(set);
  expect_matches_naive(m, set, util::as_view("xdabcx"));
}

TYPED_TEST(AcVariants, NocaseMatchesAllCases) {
  pattern::PatternSet set;
  set.add("Attack", true);
  const TypeParam m(set);
  EXPECT_EQ(m.count_matches(util::as_view("ATTACK attack AtTaCk")), 3u);
}

TYPED_TEST(AcVariants, CaseSensitiveRejectsWrongCase) {
  pattern::PatternSet set;
  set.add("Attack", false);
  const TypeParam m(set);
  EXPECT_EQ(m.count_matches(util::as_view("ATTACK attack Attack")), 1u);
}

TYPED_TEST(AcVariants, MixedCaseSensitivitySameBytes) {
  pattern::PatternSet set;
  const auto exact = set.add("get", false);
  const auto folded = set.add("get", true);
  const TypeParam m(set);
  const auto matches = m.find_matches(util::as_view("GET get"));
  // "GET" matches only the nocase pattern; "get" matches both.
  // Sorted by (pattern_id, pos): exact@4, folded@0, folded@4.
  ASSERT_EQ(matches.size(), 3u);
  EXPECT_EQ(matches[0], (Match{exact, 4}));
  EXPECT_EQ(matches[1], (Match{folded, 0}));
  EXPECT_EQ(matches[2], (Match{folded, 4}));
}

TYPED_TEST(AcVariants, BinaryPatternsWithNulAndHighBytes) {
  pattern::PatternSet set;
  set.add(util::Bytes{0x00, 0x90, 0xFF});
  set.add(util::Bytes{0x90, 0x90});
  const TypeParam m(set);
  const util::Bytes data{0x41, 0x00, 0x90, 0xFF, 0x90, 0x90, 0x90};
  expect_matches_naive(m, set, data);
}

TYPED_TEST(AcVariants, MatchAtVeryStartAndEnd) {
  pattern::PatternSet set;
  set.add("begin");
  set.add("end");
  const TypeParam m(set);
  const auto matches = m.find_matches(util::as_view("beginxxxend"));
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0].pos, 0u);
  EXPECT_EQ(matches[1].pos, 8u);
}

TYPED_TEST(AcVariants, LongPattern) {
  pattern::PatternSet set;
  const std::string longpat(300, 'x');
  set.add(longpat);
  const TypeParam m(set);
  const std::string hay = "yy" + longpat + "yy";
  EXPECT_EQ(m.count_matches(util::as_view(hay)), 1u);
}

TYPED_TEST(AcVariants, RandomizedDifferentialSmall) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const auto set = testutil::random_set(40, 6, testutil::case_seed(seed));
    const TypeParam m(set);
    const auto text = testutil::random_text(2000, testutil::case_seed(seed + 100));
    expect_matches_naive(m, set, text, "seed=" + std::to_string(seed));
  }
}

TEST(AcFull, MemoryGrowsWithPatternCount) {
  const auto small = testutil::random_set(50, 12, testutil::case_seed(1), 26);
  const auto large = testutil::random_set(500, 12, testutil::case_seed(2), 26);
  const AcFullMatcher a(small);
  const AcFullMatcher b(large);
  EXPECT_GT(b.memory_bytes(), a.memory_bytes()) << testutil::seed_note();
  EXPECT_GT(b.state_count(), a.state_count()) << testutil::seed_note();
}

TEST(AcFull, SparseUsesLessMemoryThanFull) {
  const auto set = testutil::random_set(500, 16, testutil::case_seed(3), 26);
  const AcFullMatcher full(set);
  const AcSparseMatcher sparse(set);
  EXPECT_LT(sparse.memory_bytes(), full.memory_bytes()) << testutil::seed_note();
}

TEST(AcFull, FullAndSparseAgreeOnRealisticSet) {
  const auto set = testutil::random_set(200, 10, testutil::case_seed(4));
  const AcFullMatcher full(set);
  const AcSparseMatcher sparse(set);
  const auto text = testutil::random_text(20000, testutil::case_seed(5));
  EXPECT_EQ(full.find_matches(text), sparse.find_matches(text)) << testutil::seed_note();
}

// ---- compact layout ---------------------------------------------------------------

TEST(AcCompact, CompressesTheFullMatrix) {
  const auto set = testutil::random_set(500, 16, testutil::case_seed(6), 26);
  const AcFullMatcher full(set);
  const AcCompactMatcher compact(set);
  ASSERT_EQ(full.state_count(), compact.state_count());
  // The compression claim: well under a quarter of the full matrix (in
  // practice ~3-5%: most states diff from the root row at only a few bytes).
  EXPECT_LT(compact.memory_bytes() * 4, full.memory_bytes()) << testutil::seed_note();
  EXPECT_LT(compact.dense_states(), compact.state_count() / 10 + 2)
      << testutil::seed_note();
}

TEST(AcCompact, DenseStatesStillMatchExactly) {
  // A state whose row differs from the root row on more than half the
  // folded alphabet (>= 128 bytes) must be laid out dense: give state "a"
  // children on every byte value (~230 distinct folded bytes).
  pattern::PatternSet set;
  set.add("a");
  for (unsigned b = 0; b < 256; ++b) {
    set.add(util::Bytes{static_cast<std::uint8_t>('a'), static_cast<std::uint8_t>(b)});
  }
  const AcCompactMatcher compact(set);
  EXPECT_GE(compact.dense_states(), 2u);  // root + state "a" at least
  util::Bytes text;
  util::Rng rng(testutil::case_seed(7));
  for (int i = 0; i < 4096; ++i) {
    text.push_back(rng.chance(0.4) ? std::uint8_t{'a'} : static_cast<std::uint8_t>(rng.below(256)));
  }
  testutil::expect_matches_naive(compact, set, text, "dense-row mix");
}

TEST(AcCompact, ArenaIsContiguousAndOffsetAddressed) {
  const auto set = testutil::classic_set();
  const AcCompactMatcher compact(set);
  // Root row is dense at offset 0 and every ref's offset stays in-arena.
  ASSERT_GE(compact.arena_words(), 256u);
  for (unsigned b = 0; b < 256; ++b) {
    const std::uint32_t ref = compact.arena()[b];
    EXPECT_LT(ref & kAcOffsetMask, compact.arena_words());
  }
}

// ---- lane-parallel batch kernel ---------------------------------------------------

using PacketMatch = std::tuple<std::uint32_t, std::uint32_t, std::uint64_t>;

struct CollectingBatchSink final : BatchSink {
  std::vector<PacketMatch> out;
  void on_match(std::uint32_t packet, const Match& m) override {
    out.emplace_back(packet, m.pattern_id, m.pos);
  }
};

std::vector<util::ByteView> views_of(const std::vector<util::Bytes>& payloads) {
  std::vector<util::ByteView> v;
  for (const util::Bytes& p : payloads) v.emplace_back(p.data(), p.size());
  return v;
}

// The satellite contract: AC-lanes (compact scan_batch) must report the
// multiset scalar full-table AC reports per payload — across batch sizes,
// ragged payload mixes (lane refill), and random seed universes.
void expect_lanes_match_scalar_ac(const pattern::PatternSet& set,
                                  const std::vector<util::Bytes>& payloads,
                                  const std::string& context) {
  const AcFullMatcher reference(set);
  std::vector<PacketMatch> expected;
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    for (const Match& m : reference.find_matches(payloads[i])) {
      expected.emplace_back(static_cast<std::uint32_t>(i), m.pattern_id, m.pos);
    }
  }
  std::sort(expected.begin(), expected.end());

  const AcCompactMatcher compact(set);
  const auto views = views_of(payloads);
  ScanScratch scratch;
  for (std::size_t batch : {std::size_t{1}, std::size_t{7}, std::size_t{32}}) {
    CollectingBatchSink sink;
    for (std::size_t begin = 0; begin < views.size(); begin += batch) {
      const std::size_t count = std::min(batch, views.size() - begin);
      struct Shift final : BatchSink {
        CollectingBatchSink* inner;
        std::uint32_t base;
        void on_match(std::uint32_t packet, const Match& m) override {
          inner->on_match(base + packet, m);
        }
      } shifted;
      shifted.inner = &sink;
      shifted.base = static_cast<std::uint32_t>(begin);
      compact.scan_batch({views.data() + begin, count}, shifted, scratch);
    }
    std::sort(sink.out.begin(), sink.out.end());
    EXPECT_EQ(sink.out, expected)
        << context << " batch=" << batch << " (" << testutil::seed_note() << ")";
  }
}

TEST(AcLanes, MatchesScalarAcOnAdversarialPayloadMix) {
  const auto set = testutil::boundary_set();
  std::vector<util::Bytes> payloads;
  payloads.push_back({});                        // empty (skipped at staging)
  payloads.push_back(util::to_bytes("a"));       // 1-byte match
  payloads.push_back(util::to_bytes("xxab"));    // prefix ends at the edge...
  payloads.push_back(util::to_bytes("cdexx"));   // ...suffix opens the next payload
  payloads.push_back(util::to_bytes("abcde"));   // exact fit against both edges
  payloads.push_back({});
  payloads.push_back(util::to_bytes("GEt hTtP/1.1"));            // nocase
  payloads.push_back({0x00, 0x01, 0xFF, 0xFE, 0xFD, 0xFC, 0xFB});  // binary + NUL
  payloads.push_back(util::to_bytes("z"));
  payloads.push_back(testutil::random_text(3, testutil::case_seed(8)));
  payloads.push_back(testutil::random_text(129, testutil::case_seed(9)));  // odd tail
  expect_lanes_match_scalar_ac(set, payloads, "adversarial");
}

TEST(AcLanes, MatchesScalarAcAcrossRaggedRandomPayloads) {
  const auto set = testutil::random_set(300, 6, testutil::case_seed(10));
  util::Rng rng(testutil::case_seed(11));
  std::vector<util::Bytes> payloads;
  for (int i = 0; i < 64; ++i) {
    // Ragged lengths exercise the dynamic lane-refill path: lanes finish at
    // wildly different times and must pick up fresh payloads mid-batch.
    const std::size_t len = rng.below(400);
    payloads.push_back(testutil::random_text(len, testutil::case_seed(12) + i));
  }
  expect_lanes_match_scalar_ac(set, payloads, "ragged");
}

TEST(AcLanes, MatchesScalarAcOnDenseHeavyAutomaton) {
  // Force dense records into the lane kernel's gather path.
  pattern::PatternSet set;
  set.add("a");
  for (unsigned b = 0; b < 256; ++b) {
    set.add(util::Bytes{static_cast<std::uint8_t>('a'), static_cast<std::uint8_t>(b)}, (b % 3) == 0);
  }
  util::Rng rng(testutil::case_seed(13));
  std::vector<util::Bytes> payloads;
  for (int i = 0; i < 24; ++i) {
    util::Bytes text;
    const std::size_t len = 1 + rng.below(200);
    for (std::size_t k = 0; k < len; ++k) {
      text.push_back(rng.chance(0.5) ? std::uint8_t{'a'} : static_cast<std::uint8_t>(rng.below(256)));
    }
    payloads.push_back(std::move(text));
  }
  expect_lanes_match_scalar_ac(set, payloads, "dense-heavy");
}

}  // namespace
}  // namespace vpm::ac
