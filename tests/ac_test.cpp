// Aho-Corasick tests: trie construction, both automaton variants, textbook
// cases, overlap semantics, and randomized differential checks vs naive.
#include <gtest/gtest.h>

#include "ac/ac_full.hpp"
#include "ac/ac_sparse.hpp"
#include "ac/trie.hpp"
#include "helpers.hpp"

namespace vpm::ac {
namespace {

using testutil::classic_set;
using testutil::expect_matches_naive;

TEST(Trie, StateCountMatchesDistinctPrefixes) {
  // he, she, his, hers -> root + h,e | s,h,e | i,s | r,s = 10 states.
  const Trie trie(classic_set());
  EXPECT_EQ(trie.state_count(), 10u);
}

TEST(Trie, RootFallbackOnUnknownByte) {
  const Trie trie(classic_set());
  EXPECT_EQ(trie.next_state(0, 'z'), 0u);
}

TEST(Trie, GotoFollowsPatternBytes) {
  const Trie trie(classic_set());
  std::uint32_t s = 0;
  for (char c : std::string("she")) {
    s = trie.next_state(s, static_cast<std::uint8_t>(c));
    EXPECT_NE(s, 0u);
  }
  // "she" end state must output both "she" and (via fail) "he".
  std::size_t outputs = 0;
  for (std::uint32_t n = s; n != kNoState; n = trie.nodes()[n].report_link) {
    outputs += trie.nodes()[n].outputs.size();
  }
  EXPECT_EQ(outputs, 2u);
}

template <typename M>
class AcVariants : public ::testing::Test {};

using Variants = ::testing::Types<AcFullMatcher, AcSparseMatcher>;
TYPED_TEST_SUITE(AcVariants, Variants);

TYPED_TEST(AcVariants, ClassicUshersExample) {
  pattern::PatternSet set;
  const auto he = set.add("he");
  const auto she = set.add("she");
  set.add("his");
  const auto hers = set.add("hers");
  const TypeParam m(set);
  const auto matches = m.find_matches(util::as_view("ushers"));
  // "ushers" contains she@1, he@2, hers@2; sorted by (id, pos):
  ASSERT_EQ(matches.size(), 3u);
  EXPECT_EQ(matches[0], (Match{he, 2}));
  EXPECT_EQ(matches[1], (Match{she, 1}));
  EXPECT_EQ(matches[2], (Match{hers, 2}));
}

TYPED_TEST(AcVariants, ClassicExampleAgainstOracle) {
  const auto set = classic_set();
  const TypeParam m(set);
  expect_matches_naive(m, set, util::as_view("ushers"));
  expect_matches_naive(m, set, util::as_view("shishers"));
  expect_matches_naive(m, set, util::as_view("hehehehe"));
}

TYPED_TEST(AcVariants, EmptyInputNoMatches) {
  const auto set = classic_set();
  const TypeParam m(set);
  EXPECT_EQ(m.count_matches({}), 0u);
}

TYPED_TEST(AcVariants, InputShorterThanAnyPattern) {
  pattern::PatternSet set;
  set.add("abcdef");
  const TypeParam m(set);
  EXPECT_EQ(m.count_matches(util::as_view("abc")), 0u);
}

TYPED_TEST(AcVariants, SingleBytePatterns) {
  pattern::PatternSet set;
  set.add("a");
  set.add("z");
  const TypeParam m(set);
  EXPECT_EQ(m.count_matches(util::as_view("banana")), 3u);
  expect_matches_naive(m, set, util::as_view("azazaz"));
}

TYPED_TEST(AcVariants, OverlappingOccurrences) {
  pattern::PatternSet set;
  set.add("aa");
  const TypeParam m(set);
  EXPECT_EQ(m.count_matches(util::as_view("aaaa")), 3u);
}

TYPED_TEST(AcVariants, PatternIsSuffixOfAnother) {
  pattern::PatternSet set;
  set.add("dabc");
  set.add("abc");
  set.add("bc");
  set.add("c");
  const TypeParam m(set);
  expect_matches_naive(m, set, util::as_view("xdabcx"));
}

TYPED_TEST(AcVariants, NocaseMatchesAllCases) {
  pattern::PatternSet set;
  set.add("Attack", true);
  const TypeParam m(set);
  EXPECT_EQ(m.count_matches(util::as_view("ATTACK attack AtTaCk")), 3u);
}

TYPED_TEST(AcVariants, CaseSensitiveRejectsWrongCase) {
  pattern::PatternSet set;
  set.add("Attack", false);
  const TypeParam m(set);
  EXPECT_EQ(m.count_matches(util::as_view("ATTACK attack Attack")), 1u);
}

TYPED_TEST(AcVariants, MixedCaseSensitivitySameBytes) {
  pattern::PatternSet set;
  const auto exact = set.add("get", false);
  const auto folded = set.add("get", true);
  const TypeParam m(set);
  const auto matches = m.find_matches(util::as_view("GET get"));
  // "GET" matches only the nocase pattern; "get" matches both.
  // Sorted by (pattern_id, pos): exact@4, folded@0, folded@4.
  ASSERT_EQ(matches.size(), 3u);
  EXPECT_EQ(matches[0], (Match{exact, 4}));
  EXPECT_EQ(matches[1], (Match{folded, 0}));
  EXPECT_EQ(matches[2], (Match{folded, 4}));
}

TYPED_TEST(AcVariants, BinaryPatternsWithNulAndHighBytes) {
  pattern::PatternSet set;
  set.add(util::Bytes{0x00, 0x90, 0xFF});
  set.add(util::Bytes{0x90, 0x90});
  const TypeParam m(set);
  const util::Bytes data{0x41, 0x00, 0x90, 0xFF, 0x90, 0x90, 0x90};
  expect_matches_naive(m, set, data);
}

TYPED_TEST(AcVariants, MatchAtVeryStartAndEnd) {
  pattern::PatternSet set;
  set.add("begin");
  set.add("end");
  const TypeParam m(set);
  const auto matches = m.find_matches(util::as_view("beginxxxend"));
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0].pos, 0u);
  EXPECT_EQ(matches[1].pos, 8u);
}

TYPED_TEST(AcVariants, LongPattern) {
  pattern::PatternSet set;
  const std::string longpat(300, 'x');
  set.add(longpat);
  const TypeParam m(set);
  const std::string hay = "yy" + longpat + "yy";
  EXPECT_EQ(m.count_matches(util::as_view(hay)), 1u);
}

TYPED_TEST(AcVariants, RandomizedDifferentialSmall) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const auto set = testutil::random_set(40, 6, testutil::case_seed(seed));
    const TypeParam m(set);
    const auto text = testutil::random_text(2000, testutil::case_seed(seed + 100));
    expect_matches_naive(m, set, text, "seed=" + std::to_string(seed));
  }
}

TEST(AcFull, MemoryGrowsWithPatternCount) {
  const auto small = testutil::random_set(50, 12, testutil::case_seed(1), 26);
  const auto large = testutil::random_set(500, 12, testutil::case_seed(2), 26);
  const AcFullMatcher a(small);
  const AcFullMatcher b(large);
  EXPECT_GT(b.memory_bytes(), a.memory_bytes()) << testutil::seed_note();
  EXPECT_GT(b.state_count(), a.state_count()) << testutil::seed_note();
}

TEST(AcFull, SparseUsesLessMemoryThanFull) {
  const auto set = testutil::random_set(500, 16, testutil::case_seed(3), 26);
  const AcFullMatcher full(set);
  const AcSparseMatcher sparse(set);
  EXPECT_LT(sparse.memory_bytes(), full.memory_bytes()) << testutil::seed_note();
}

TEST(AcFull, FullAndSparseAgreeOnRealisticSet) {
  const auto set = testutil::random_set(200, 10, testutil::case_seed(4));
  const AcFullMatcher full(set);
  const AcSparseMatcher sparse(set);
  const auto text = testutil::random_text(20000, testutil::case_seed(5));
  EXPECT_EQ(full.find_matches(text), sparse.find_matches(text)) << testutil::seed_note();
}

}  // namespace
}  // namespace vpm::ac
