// Wu-Manber baseline tests.
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "wm/wu_manber.hpp"

namespace vpm::wm {
namespace {

using testutil::expect_matches_naive;

TEST(WuManber, ClassicExample) {
  const auto set = testutil::classic_set();
  const WuManberMatcher m(set);
  expect_matches_naive(m, set, util::as_view("ushers"));
}

TEST(WuManber, BoundarySet) {
  const auto set = testutil::boundary_set();
  const WuManberMatcher m(set);
  expect_matches_naive(m, set, util::as_view("a ab abc abcd abcde GET http/1.1"));
}

TEST(WuManber, SingleBytePatternsHandledByDirectPass) {
  pattern::PatternSet set;
  set.add("q");
  set.add("Z", true);
  const WuManberMatcher m(set);
  expect_matches_naive(m, set, util::as_view("qzZQz q"));
}

TEST(WuManber, MinLengthTwoEnablesBlockSearch) {
  pattern::PatternSet set;
  set.add("ab");
  set.add("abcdefgh");
  const WuManberMatcher m(set);
  EXPECT_EQ(m.min_block_pattern_length(), 2u);
  expect_matches_naive(m, set, util::as_view("abcdefgh ab xabx"));
}

TEST(WuManber, LongMinLengthAllowsBigShifts) {
  pattern::PatternSet set;
  set.add("abcdefghij");
  set.add("klmnopqrst");
  const WuManberMatcher m(set);
  EXPECT_EQ(m.min_block_pattern_length(), 10u);
  const auto text = testutil::random_text(10000, testutil::case_seed(3), 26);
  expect_matches_naive(m, set, text);
}

TEST(WuManber, NocaseSemantics) {
  pattern::PatternSet set;
  set.add("Select", true);
  set.add("UNION", false);
  const WuManberMatcher m(set);
  expect_matches_naive(m, set, util::as_view("select SELECT union UNION Select"));
}

TEST(WuManber, OverlappingMatches) {
  pattern::PatternSet set;
  set.add("aa");
  set.add("aaa");
  const WuManberMatcher m(set);
  expect_matches_naive(m, set, util::as_view("aaaaa"));
}

TEST(WuManber, EmptyAndTinyInputs) {
  const auto set = testutil::classic_set();
  const WuManberMatcher m(set);
  EXPECT_EQ(m.count_matches({}), 0u);
  EXPECT_EQ(m.count_matches(util::as_view("h")), 0u);
  EXPECT_EQ(m.count_matches(util::as_view("he")), 1u);
}

TEST(WuManber, RandomizedDifferential) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const auto set = testutil::random_set(50, 8, testutil::case_seed(seed + 20));
    const WuManberMatcher m(set);
    const auto text = testutil::random_text(3000, testutil::case_seed(seed + 60));
    expect_matches_naive(m, set, text, "seed=" + std::to_string(seed));
  }
}

TEST(WuManber, OnlyShortPatterns) {
  pattern::PatternSet set;
  set.add("x");
  set.add("y");
  const WuManberMatcher m(set);
  EXPECT_EQ(m.count_matches(util::as_view("xyzzy")), 3u);
}

TEST(WuManber, BinaryPatterns) {
  pattern::PatternSet set;
  set.add(util::Bytes{0x90, 0x90, 0x90, 0xC3});
  const WuManberMatcher m(set);
  const util::Bytes data{0x90, 0x90, 0x90, 0x90, 0xC3, 0x00};
  expect_matches_naive(m, set, data);
}

}  // namespace
}  // namespace vpm::wm
