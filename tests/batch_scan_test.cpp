// Differential suite for the batch-scan fast path: for every algorithm the
// (packet, pattern, position) multiset reported by Matcher::scan_batch must
// equal the per-payload scan() multiset — across batch sizes, adversarial
// payload mixes (empty, 1-byte, cross-boundary near-misses), and churny
// scratch reuse (the same ScanScratch handed between matchers).  Runs under
// ASan in CI, pinning the shared-candidate-pool aliasing and slack-store
// contracts; the scalar-forced rerun pins the fallback kernels.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>
#include <vector>

#include "core/matcher_factory.hpp"
#include "helpers.hpp"
#include "ids/engine.hpp"

namespace vpm {
namespace {

using testutil::case_seed;
using testutil::seed_note;

// (packet index, pattern id, position) in canonical order.
using PacketMatch = std::tuple<std::uint32_t, std::uint32_t, std::uint64_t>;

std::vector<util::ByteView> views_of(const std::vector<util::Bytes>& payloads) {
  std::vector<util::ByteView> v;
  v.reserve(payloads.size());
  for (const util::Bytes& p : payloads) v.emplace_back(p.data(), p.size());
  return v;
}

std::vector<PacketMatch> per_payload_reference(const Matcher& m,
                                               const std::vector<util::Bytes>& payloads) {
  std::vector<PacketMatch> out;
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    for (const Match& match : m.find_matches(payloads[i])) {
      out.emplace_back(static_cast<std::uint32_t>(i), match.pattern_id, match.pos);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

struct CollectingBatchSink final : BatchSink {
  std::vector<PacketMatch>* out = nullptr;
  std::uint32_t packet_base = 0;
  void on_match(std::uint32_t packet, const Match& m) override {
    out->emplace_back(packet_base + packet, m.pattern_id, m.pos);
  }
};

// Scans `payloads` through scan_batch in slices of `batch_size`, reusing the
// caller's scratch across slices (exactly how the pipeline worker drives it).
std::vector<PacketMatch> batched(const Matcher& m, const std::vector<util::Bytes>& payloads,
                                 std::size_t batch_size, ScanScratch& scratch) {
  const auto views = views_of(payloads);
  std::vector<PacketMatch> out;
  CollectingBatchSink sink;
  sink.out = &out;
  for (std::size_t begin = 0; begin < views.size(); begin += batch_size) {
    const std::size_t count = std::min(batch_size, views.size() - begin);
    sink.packet_base = static_cast<std::uint32_t>(begin);
    m.scan_batch({views.data() + begin, count}, sink, scratch);
  }
  std::sort(out.begin(), out.end());
  return out;
}

// Empty payloads, 1-byte payloads, and cross-boundary near-misses: pattern
// prefixes ending one payload with the suffix opening the next (a batch scan
// must never match across payloads), plus exact matches flush against both
// payload edges.
std::vector<util::Bytes> adversarial_payloads(std::uint64_t seed) {
  std::vector<util::Bytes> p;
  p.push_back({});                                   // empty
  p.push_back(util::to_bytes("a"));                  // 1-byte, matches 'a'
  p.push_back({});                                   // empty between content
  p.push_back(util::to_bytes("xxabc"));              // "abcd" prefix at the edge...
  p.push_back(util::to_bytes("dexx"));               // ...suffix opens the next payload
  p.push_back(util::to_bytes("abcd"));               // exact fit, both edges
  p.push_back(util::to_bytes("xHTTP/1."));           // nocase long near-miss
  p.push_back(util::to_bytes("1xGET"));              // nocase short at the tail
  p.push_back(util::to_bytes("z"));                  // 1-byte, no match
  p.push_back({0xFF, 0xFE, 0xFD, 0xFC});             // binary prefix of a 5-byte pattern
  p.push_back({0xFB});
  p.push_back(testutil::random_text(3, seed));
  p.push_back(testutil::random_text(64, seed + 1));
  return p;
}

std::vector<util::Bytes> sized_payloads(std::size_t count, std::size_t size,
                                        std::uint64_t seed) {
  std::vector<util::Bytes> p;
  p.reserve(count);
  for (std::size_t i = 0; i < count; ++i) p.push_back(testutil::random_text(size, seed + i));
  return p;
}

class BatchScanTest : public ::testing::TestWithParam<core::Algorithm> {};

TEST_P(BatchScanTest, MatchesPerPayloadScanOnAdversarialMix) {
  const auto set = testutil::boundary_set();
  const auto matcher = core::make_matcher(GetParam(), set);
  const auto payloads = adversarial_payloads(case_seed(101));
  const auto expected = per_payload_reference(*matcher, payloads);
  ScanScratch scratch;
  for (std::size_t batch : {std::size_t{1}, std::size_t{7}, std::size_t{32}}) {
    EXPECT_EQ(batched(*matcher, payloads, batch, scratch), expected)
        << matcher->name() << " batch=" << batch << " (" << seed_note() << ")";
  }
}

TEST_P(BatchScanTest, MatchesPerPayloadScanOnRandomPayloads) {
  const auto set = testutil::random_set(200, 6, case_seed(102));
  const auto matcher = core::make_matcher(GetParam(), set);
  ScanScratch scratch;
  for (std::size_t size : {std::size_t{1}, std::size_t{64}, std::size_t{256}}) {
    const auto payloads = sized_payloads(40, size, case_seed(103) + size);
    const auto expected = per_payload_reference(*matcher, payloads);
    for (std::size_t batch : {std::size_t{1}, std::size_t{7}, std::size_t{32}}) {
      EXPECT_EQ(batched(*matcher, payloads, batch, scratch), expected)
          << matcher->name() << " payload=" << size << " batch=" << batch << " ("
          << seed_note() << ")";
    }
  }
}

TEST_P(BatchScanTest, EmptyBatchIsANoOp) {
  const auto set = testutil::classic_set();
  const auto matcher = core::make_matcher(GetParam(), set);
  ScanScratch scratch;
  std::vector<PacketMatch> out;
  CollectingBatchSink sink;
  sink.out = &out;
  matcher->scan_batch({}, sink, scratch);
  EXPECT_TRUE(out.empty());
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, BatchScanTest,
                         ::testing::ValuesIn(core::available_algorithms()),
                         [](const auto& info) {
                           std::string n(core::algorithm_name(info.param));
                           std::replace(n.begin(), n.end(), '-', '_');
                           return n;
                         });

// One scratch handed between DIFFERENT matchers (the engine reuses per-group
// scratch; a scratch must re-initialize when its owner changes) and across
// churny batch-size variation.
TEST(BatchScanScratchTest, ScratchSurvivesOwnerAndBatchSizeChurn) {
  const auto set = testutil::boundary_set();
  const auto payloads = sized_payloads(32, 128, case_seed(104));
  ScanScratch scratch;
  for (int round = 0; round < 3; ++round) {
    for (core::Algorithm a : core::available_algorithms()) {
      const auto matcher = core::make_matcher(a, set);
      const auto expected = per_payload_reference(*matcher, payloads);
      const std::size_t batch = (round == 0) ? 32 : (round == 1 ? 5 : 1);
      EXPECT_EQ(batched(*matcher, payloads, batch, scratch), expected)
          << matcher->name() << " round=" << round << " (" << seed_note() << ")";
    }
  }
}

// Payloads larger than the V-PATCH chunk size take the per-payload fallback
// inside scan_batch; mixing them with small payloads must stay exact.
TEST(BatchScanScratchTest, OversizedPayloadFallback) {
  const auto set = testutil::random_set(100, 5, case_seed(105));
  core::VpatchConfig cfg;
  cfg.chunk_size = 512;  // force the fallback without a 32 KB payload
  const core::VpatchMatcher matcher(set, cfg);
  std::vector<util::Bytes> payloads;
  payloads.push_back(testutil::random_text(64, case_seed(106)));
  payloads.push_back(testutil::random_text(2048, case_seed(107)));  // oversized
  payloads.push_back(testutil::random_text(256, case_seed(108)));
  const auto expected = per_payload_reference(matcher, payloads);
  ScanScratch scratch;
  EXPECT_EQ(batched(matcher, payloads, 3, scratch), expected) << seed_note();
}

// The engine-level batch entry point: stage()+flush_batch() must produce the
// alert multiset of per-chunk inspect(), including carry dedup across chunks
// of the same flow and flows interleaved within one batch.
TEST(EngineBatchTest, StageFlushMatchesInspect) {
  pattern::PatternSet rules;
  rules.add("attack", false, pattern::Group::http);
  rules.add("/etc/passwd", false, pattern::Group::http);
  rules.add("ab", false, pattern::Group::generic);
  rules.add("xyz", true, pattern::Group::dns);

  // Chunked streams: patterns split across chunk boundaries of one flow.
  struct Feed {
    std::uint64_t flow;
    pattern::Group group;
    std::string chunk;
  };
  const std::vector<Feed> feeds = {
      {1, pattern::Group::http, "GET /atta"},
      {2, pattern::Group::dns, "qqXY"},
      {1, pattern::Group::http, "ck HTTP"},
      {3, pattern::Group::generic, "aabb"},
      {2, pattern::Group::dns, "Zqq"},
      {1, pattern::Group::http, " /etc/pas"},
      {3, pattern::Group::generic, ""},
      {1, pattern::Group::http, "swd"},
      {3, pattern::Group::generic, "ab"},
  };

  for (core::Algorithm algo : {core::Algorithm::vpatch, core::Algorithm::dfc,
                               core::Algorithm::aho_corasick}) {
    ids::IdsEngine reference(rules, {algo});
    std::vector<ids::Alert> expected;
    for (const Feed& f : feeds) {
      reference.inspect(f.flow, f.group, util::to_bytes(f.chunk), expected);
    }

    // Batched: stage everything (duplicate flows force intermediate
    // flushes), flush at batch end — the worker's exact driving pattern.
    ids::IdsEngine engine(rules, {algo});
    std::vector<ids::Alert> actual;
    ids::AlertBuffer sink(actual);
    for (std::size_t round = 0; round < 2; ++round) {  // round 2 reuses scratch
      for (const Feed& f : feeds) {
        engine.stage(f.flow + round * 100, f.group, util::to_bytes(f.chunk), sink);
      }
      engine.flush_batch(sink);
    }
    ASSERT_EQ(engine.staged_chunks(), 0u);

    auto sorted = [](std::vector<ids::Alert> v) {
      std::sort(v.begin(), v.end());
      return v;
    };
    std::vector<ids::Alert> expected2 = expected;  // round 2: flows shifted
    for (ids::Alert& a : expected2) a.flow_id += 100;
    expected.insert(expected.end(), expected2.begin(), expected2.end());
    EXPECT_EQ(sorted(actual), sorted(expected))
        << core::algorithm_name(algo) << " (" << seed_note() << ")";
    EXPECT_EQ(engine.counters().alerts, expected.size());
  }
}

// inspect() on a flow with a staged chunk must flush first: feed() would
// otherwise discard the staged bytes and leave the pending view dangling.
TEST(EngineBatchTest, InspectFlushesStagedChunkFirst) {
  pattern::PatternSet rules;
  rules.add("needle", false, pattern::Group::generic);
  ids::IdsEngine engine(rules, {core::Algorithm::vpatch});
  std::vector<ids::Alert> alerts;
  ids::AlertBuffer sink(alerts);

  engine.stage(1, pattern::Group::generic, util::to_bytes("nee"), sink);
  engine.inspect(1, pattern::Group::generic, util::to_bytes("dle"), sink);
  ASSERT_EQ(engine.staged_chunks(), 0u);
  ASSERT_EQ(alerts.size(), 1u);  // split across stage/inspect, found once
  EXPECT_EQ(alerts[0].stream_offset, 0u);

  // Staged chunk of ANOTHER flow must survive (flushed, not dropped).
  engine.stage(2, pattern::Group::generic, util::to_bytes("needle"), sink);
  engine.inspect(3, pattern::Group::generic, util::to_bytes("xx"), sink);
  engine.flush_batch(sink);
  ASSERT_EQ(alerts.size(), 2u);
  EXPECT_EQ(alerts[1].flow_id, 2u);
}

// close_flow() called from an AlertSink DURING flush_batch (teardown-on-
// alert) must defer: the in-flight batch's flow pointers and indices stay
// valid, every staged chunk still gets scanned, and the flow is gone after.
TEST(EngineBatchTest, CloseFlowFromSinkDefersUntilFlushCompletes) {
  pattern::PatternSet rules;
  rules.add("needle", false, pattern::Group::generic);
  ids::IdsEngine engine(rules, {core::Algorithm::vpatch});

  struct ClosingSink final : ids::AlertSink {
    ids::IdsEngine* engine = nullptr;
    std::vector<ids::Alert> alerts;
    void on_alert(const ids::Alert& a) override {
      alerts.push_back(a);
      engine->close_flow(a.flow_id);  // re-enters the engine mid-flush
    }
  } sink;
  sink.engine = &engine;

  for (std::uint64_t flow = 1; flow <= 4; ++flow) {
    engine.stage(flow, pattern::Group::generic, util::to_bytes("a needle here"), sink);
  }
  engine.flush_batch(sink);

  ASSERT_EQ(sink.alerts.size(), 4u);  // every staged chunk was still scanned
  std::vector<std::uint64_t> flows;
  for (const ids::Alert& a : sink.alerts) flows.push_back(a.flow_id);
  std::sort(flows.begin(), flows.end());
  EXPECT_EQ(flows, (std::vector<std::uint64_t>{1, 2, 3, 4}));
  EXPECT_EQ(engine.active_flows(), 0u);  // the deferred closes happened
}

// The nested-flush variant: a second stage()/inspect() on an already-staged
// flow triggers flush_batch internally; if the sink closes that very flow
// (deferred to flush end), the engine must re-acquire the flow state — the
// old reference points at an erased node (was a heap-use-after-free).
TEST(EngineBatchTest, StageAfterSinkClosedSameFlowSurvives) {
  pattern::PatternSet rules;
  rules.add("needle", false, pattern::Group::generic);
  ids::IdsEngine engine(rules, {core::Algorithm::vpatch});

  struct ClosingSink final : ids::AlertSink {
    ids::IdsEngine* engine = nullptr;
    std::uint64_t alerts = 0;
    void on_alert(const ids::Alert& a) override {
      ++alerts;
      engine->close_flow(a.flow_id);
    }
  } sink;
  sink.engine = &engine;

  engine.stage(1, pattern::Group::generic, util::to_bytes("a needle"), sink);
  // Second chunk for flow 1: flushes (alert fires, sink closes flow 1,
  // deferred erase runs at flush end), then must re-acquire flow 1.
  engine.stage(1, pattern::Group::generic, util::to_bytes("needle!"), sink);
  engine.flush_batch(sink);
  EXPECT_EQ(sink.alerts, 2u);

  // inspect() variant of the same hazard.
  engine.stage(2, pattern::Group::generic, util::to_bytes("needle"), sink);
  engine.inspect(2, pattern::Group::generic, util::to_bytes("needle"), sink);
  EXPECT_EQ(sink.alerts, 4u);
}

// close_flow() on a staged flow must drop the pending chunk without leaving
// a dangling reference behind (the eviction path's contract).
TEST(EngineBatchTest, CloseFlowDropsStagedChunk) {
  pattern::PatternSet rules;
  rules.add("needle", false, pattern::Group::generic);
  ids::IdsEngine engine(rules, {core::Algorithm::vpatch});
  std::vector<ids::Alert> alerts;
  ids::AlertBuffer sink(alerts);

  engine.stage(1, pattern::Group::generic, util::to_bytes("needle"), sink);
  engine.stage(2, pattern::Group::generic, util::to_bytes("needle"), sink);
  engine.close_flow(1);
  engine.flush_batch(sink);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].flow_id, 2u);
}

}  // namespace
}  // namespace vpm
