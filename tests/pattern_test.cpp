// Pattern substrate tests: model, set semantics, Snort rule parsing,
// prefix-variant enumeration, and the S1/S2 generator statistics.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "pattern/attack_corpus.hpp"
#include "pattern/pattern_set.hpp"
#include "pattern/prefix.hpp"
#include "pattern/ruleset_gen.hpp"
#include "pattern/snort_rules.hpp"

namespace vpm::pattern {
namespace {

// ---- Pattern ----------------------------------------------------------------

TEST(Pattern, MatchesAtExact) {
  PatternSet set;
  const auto id = set.add("GET");
  const auto data = util::to_bytes("xxGETyy");
  EXPECT_TRUE(set[id].matches_at(data, 2));
  EXPECT_FALSE(set[id].matches_at(data, 1));
  EXPECT_FALSE(set[id].matches_at(data, 5));  // would run past the end
}

TEST(Pattern, MatchesAtNocase) {
  PatternSet set;
  const auto id = set.add("GeT", /*nocase=*/true);
  EXPECT_TRUE(set[id].matches_at(util::to_bytes("xget"), 1));
  EXPECT_TRUE(set[id].matches_at(util::to_bytes("xGET"), 1));
  EXPECT_FALSE(set[id].matches_at(util::to_bytes("xGEX"), 1));
}

TEST(Pattern, CaseSensitiveDoesNotFold) {
  PatternSet set;
  const auto id = set.add("GET", /*nocase=*/false);
  EXPECT_FALSE(set[id].matches_at(util::to_bytes("get"), 0));
}

TEST(Pattern, GroupNames) {
  EXPECT_EQ(group_name(Group::http), "http");
  EXPECT_EQ(group_name(Group::generic), "generic");
  EXPECT_EQ(group_name(Group::dns), "dns");
}

// ---- PatternSet -----------------------------------------------------------------

TEST(PatternSet, AssignsDenseIds) {
  PatternSet set;
  EXPECT_EQ(set.add("a"), 0u);
  EXPECT_EQ(set.add("b"), 1u);
  EXPECT_EQ(set.add("c"), 2u);
  EXPECT_EQ(set.size(), 3u);
}

TEST(PatternSet, DeduplicatesIdenticalPatterns) {
  PatternSet set;
  const auto id1 = set.add("attack");
  const auto id2 = set.add("attack");
  EXPECT_EQ(id1, id2);
  EXPECT_EQ(set.size(), 1u);
}

TEST(PatternSet, NocaseVariantIsDistinct) {
  PatternSet set;
  const auto a = set.add("attack", false);
  const auto b = set.add("attack", true);
  EXPECT_NE(a, b);
  EXPECT_EQ(set.size(), 2u);
}

TEST(PatternSet, RejectsEmptyPattern) {
  PatternSet set;
  EXPECT_THROW(set.add(util::Bytes{}), std::invalid_argument);
}

TEST(PatternSet, LengthStats) {
  PatternSet set;
  set.add("a");          // 1, short
  set.add("ab");         // 2, short
  set.add("abc");        // 3, short
  set.add("abcd");       // 4, long (but counts in 1..4)
  set.add("abcdefgh");   // 8, long
  const LengthStats s = set.length_stats();
  EXPECT_EQ(s.total, 5u);
  EXPECT_EQ(s.short_family, 3u);
  EXPECT_EQ(s.long_family, 2u);
  EXPECT_EQ(s.min_len, 1u);
  EXPECT_EQ(s.max_len, 8u);
  EXPECT_NEAR(s.frac_len_1_to_4, 0.8, 1e-12);
}

TEST(PatternSet, FilterGroupsKeepsOnlyRequested) {
  PatternSet set;
  set.add("web1", false, Group::http);
  set.add("gen1", false, Group::generic);
  set.add("dns1", false, Group::dns);
  const PatternSet web = set.web_patterns();
  EXPECT_EQ(web.size(), 2u);
  EXPECT_TRUE(web.contains(util::as_view("web1"), false));
  EXPECT_TRUE(web.contains(util::as_view("gen1"), false));
  EXPECT_FALSE(web.contains(util::as_view("dns1"), false));
}

TEST(PatternSet, RandomSubsetDeterministicAndDistinct) {
  PatternSet set;
  for (int i = 0; i < 100; ++i) set.add("pattern-" + std::to_string(i));
  const PatternSet a = set.random_subset(30, 7);
  const PatternSet b = set.random_subset(30, 7);
  ASSERT_EQ(a.size(), 30u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[static_cast<std::uint32_t>(i)].bytes, b[static_cast<std::uint32_t>(i)].bytes);
  }
  const PatternSet c = set.random_subset(30, 8);
  bool identical = true;
  for (std::size_t i = 0; i < c.size() && identical; ++i) {
    identical = (a[static_cast<std::uint32_t>(i)].bytes == c[static_cast<std::uint32_t>(i)].bytes);
  }
  EXPECT_FALSE(identical) << "different seeds should give different subsets";
}

TEST(PatternSet, RandomSubsetClampsToSize) {
  PatternSet set;
  set.add("one");
  EXPECT_EQ(set.random_subset(10, 1).size(), 1u);
}

// ---- prefix variants ---------------------------------------------------------

TEST(PrefixVariants, CaseSensitiveSingleVariant) {
  const auto b = util::to_bytes("Ab");
  const auto vs = prefix_variants({b.data(), 2}, false);
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0], 0x6241u);  // 'A' | 'b'<<8
}

TEST(PrefixVariants, NocaseForksAlphabeticBytesOnly) {
  const auto b = util::to_bytes("a1");
  const auto vs = prefix_variants({b.data(), 2}, true);
  ASSERT_EQ(vs.size(), 2u);  // 'a1' and 'A1'
  std::set<std::uint32_t> s(vs.begin(), vs.end());
  EXPECT_TRUE(s.contains(0x3161u));
  EXPECT_TRUE(s.contains(0x3141u));
}

TEST(PrefixVariants, FourAlphaBytesGiveSixteenVariants) {
  const auto b = util::to_bytes("abcd");
  const auto vs = prefix_variants({b.data(), 4}, true);
  EXPECT_EQ(vs.size(), 16u);
  std::set<std::uint32_t> s(vs.begin(), vs.end());
  EXPECT_EQ(s.size(), 16u) << "variants must be distinct";
}

TEST(PrefixVariants, NonAlphaNocaseStaysSingle) {
  const auto b = util::to_bytes("1234");
  const auto vs = prefix_variants({b.data(), 4}, true);
  EXPECT_EQ(vs.size(), 1u);
}

// ---- snort rule parsing ---------------------------------------------------------

TEST(SnortRules, ParsesSimpleContent) {
  ParsedRule rule;
  ASSERT_TRUE(parse_rule_line(
      R"(alert tcp any any -> any $HTTP_PORTS (msg:"test"; content:"attack"; sid:1;))", rule));
  ASSERT_EQ(rule.contents.size(), 1u);
  EXPECT_EQ(util::to_string(rule.contents[0].bytes), "attack");
  EXPECT_FALSE(rule.contents[0].nocase);
  EXPECT_EQ(rule.group, Group::http);
  EXPECT_EQ(rule.msg, "test");
}

TEST(SnortRules, ParsesHexContent) {
  ParsedRule rule;
  ASSERT_TRUE(parse_rule_line(
      R"(alert tcp any any -> any any (content:"|90 90 C3|"; sid:2;))", rule));
  ASSERT_EQ(rule.contents.size(), 1u);
  EXPECT_EQ(rule.contents[0].bytes, (util::Bytes{0x90, 0x90, 0xC3}));
}

TEST(SnortRules, ParsesMixedTextAndHex) {
  ParsedRule rule;
  ASSERT_TRUE(parse_rule_line(
      R"(alert tcp any any -> any any (content:"GET|20|/admin"; sid:3;))", rule));
  EXPECT_EQ(util::to_string(rule.contents[0].bytes), "GET /admin");
}

TEST(SnortRules, NocaseAppliesToPrecedingContent) {
  ParsedRule rule;
  ASSERT_TRUE(parse_rule_line(
      R"(alert tcp any any -> any any (content:"cmd"; nocase; content:"exe"; sid:4;))", rule));
  ASSERT_EQ(rule.contents.size(), 2u);
  EXPECT_TRUE(rule.contents[0].nocase);
  EXPECT_FALSE(rule.contents[1].nocase);
}

TEST(SnortRules, EscapedQuoteInsideContent) {
  ParsedRule rule;
  ASSERT_TRUE(parse_rule_line(
      R"(alert tcp any any -> any any (content:"say \"hi\""; sid:5;))", rule));
  EXPECT_EQ(util::to_string(rule.contents[0].bytes), "say \"hi\"");
}

TEST(SnortRules, SkipsCommentsAndBlanks) {
  ParsedRule rule;
  EXPECT_FALSE(parse_rule_line("# comment line", rule));
  EXPECT_FALSE(parse_rule_line("", rule));
  EXPECT_FALSE(parse_rule_line("   \t  ", rule));
}

TEST(SnortRules, SkipsRuleWithoutContent) {
  ParsedRule rule;
  EXPECT_FALSE(parse_rule_line(
      R"(alert icmp any any -> any any (msg:"ping"; sid:6;))", rule));
}

TEST(SnortRules, NegatedContentIgnored) {
  ParsedRule rule;
  EXPECT_FALSE(parse_rule_line(
      R"(alert tcp any any -> any any (content:!"benign"; sid:7;))", rule));
}

TEST(SnortRules, MalformedHexThrows) {
  ParsedRule rule;
  EXPECT_THROW(parse_rule_line(
      R"(alert tcp any any -> any any (content:"|9X|"; sid:8;))", rule),
      std::invalid_argument);
}

TEST(SnortRules, ParseRulesCountsSkipped) {
  const std::string text =
      "# header\n"
      "alert tcp any any -> any 80 (content:\"a1b2\"; sid:1;)\n"
      "alert tcp any any -> any any (content:\"|ZZ|\"; sid:2;)\n"
      "alert tcp any any -> any 25 (content:\"EHLO evil\"; sid:3;)\n";
  std::size_t skipped = 0;
  const auto rules = parse_rules(text, &skipped);
  EXPECT_EQ(rules.size(), 2u);
  EXPECT_EQ(skipped, 1u);
  EXPECT_EQ(rules[0].group, Group::http);
  EXPECT_EQ(rules[1].group, Group::smtp);
}

TEST(SnortRules, LongestOnlySelection) {
  const std::string text =
      R"(alert tcp any any -> any any (content:"ab"; content:"abcdef"; sid:1;))";
  const PatternSet set = patterns_from_rules(text, ContentSelection::kLongestOnly);
  ASSERT_EQ(set.size(), 1u);
  EXPECT_EQ(util::to_string(set[0].bytes), "abcdef");
}

TEST(SnortRules, AllContentsSelection) {
  const std::string text =
      R"(alert tcp any any -> any any (content:"ab"; content:"abcdef"; sid:1;))";
  const PatternSet set = patterns_from_rules(text, ContentSelection::kAll);
  EXPECT_EQ(set.size(), 2u);
}

TEST(SnortRules, RenderRoundTrips) {
  PatternSet original;
  original.add("GET /evil", true, Group::http);
  original.add(util::Bytes{0x00, 0xFF, 0x41}, false, Group::generic);
  original.add("EHLO spam", false, Group::smtp);
  const std::string text = render_rules(original);
  const PatternSet parsed = patterns_from_rules(text, ContentSelection::kAll);
  ASSERT_EQ(parsed.size(), original.size());
  for (const Pattern& p : original) {
    EXPECT_TRUE(parsed.contains(p.bytes, p.nocase)) << p.printable();
  }
}

// ---- corpus -----------------------------------------------------------------------

TEST(AttackCorpus, NonEmptyAndShortTokensShort) {
  EXPECT_GT(attack_strings().size(), 100u);
  EXPECT_GT(short_tokens().size(), 30u);
  for (const auto t : short_tokens()) {
    EXPECT_GE(t.size(), 1u);
    EXPECT_LE(t.size(), 4u) << t;
  }
}

TEST(AttackCorpus, ContainsPaperExamples) {
  // The paper motivates the short-pattern filter with GET/HTTP tokens.
  const auto tokens = short_tokens();
  EXPECT_NE(std::find(tokens.begin(), tokens.end(), "GET"), tokens.end());
  EXPECT_NE(std::find(tokens.begin(), tokens.end(), "HTTP"), tokens.end());
}

// ---- ruleset generator --------------------------------------------------------------

TEST(RulesetGen, ExactCountAndDeterminism) {
  RulesetConfig cfg;
  cfg.count = 500;
  cfg.seed = 11;
  const PatternSet a = generate_ruleset(cfg);
  const PatternSet b = generate_ruleset(cfg);
  ASSERT_EQ(a.size(), 500u);
  ASSERT_EQ(b.size(), 500u);
  for (std::uint32_t i = 0; i < 500; ++i) {
    EXPECT_EQ(a[i].bytes, b[i].bytes) << i;
    EXPECT_EQ(a[i].nocase, b[i].nocase) << i;
    EXPECT_EQ(a[i].group, b[i].group) << i;
  }
}

TEST(RulesetGen, ShortFractionTracksSnortStatistic) {
  RulesetConfig cfg;
  cfg.count = 4000;
  cfg.seed = 3;
  const LengthStats s = generate_ruleset(cfg).length_stats();
  // Paper footnote 2: 21% of Snort's patterns are 1-4 bytes.
  EXPECT_NEAR(s.frac_len_1_to_4, 0.21, 0.05);
}

TEST(RulesetGen, S1PresetWebSubsetNear2K) {
  const PatternSet s1 = generate_ruleset(s1_config());
  EXPECT_EQ(s1.size(), 2500u);
  const std::size_t web = s1.web_patterns().size();
  EXPECT_GT(web, 1700u);
  EXPECT_LT(web, 2300u);
}

TEST(RulesetGen, DifferentSeedsDiffer) {
  RulesetConfig a_cfg;
  a_cfg.count = 200;
  a_cfg.seed = 1;
  RulesetConfig b_cfg = a_cfg;
  b_cfg.seed = 2;
  const PatternSet a = generate_ruleset(a_cfg);
  const PatternSet b = generate_ruleset(b_cfg);
  std::size_t common = 0;
  for (const Pattern& p : a) {
    if (b.contains(p.bytes, p.nocase)) ++common;
  }
  EXPECT_LT(common, 150u) << "seeds should not produce near-identical sets";
}

TEST(RulesetGen, PatternsAreNonEmptyAndBounded) {
  RulesetConfig cfg;
  cfg.count = 1000;
  cfg.seed = 5;
  for (const Pattern& p : generate_ruleset(cfg)) {
    EXPECT_GE(p.size(), 1u);
    EXPECT_LE(p.size(), 200u);
  }
}

TEST(RulesetGen, NocaseOnlyOnTextPatterns) {
  RulesetConfig cfg;
  cfg.count = 1000;
  cfg.seed = 6;
  for (const Pattern& p : generate_ruleset(cfg)) {
    if (!p.nocase) continue;
    for (std::uint8_t b : p.bytes) {
      EXPECT_TRUE(b >= 0x20 && b < 0x7F) << "nocase pattern must be printable text";
    }
  }
}

}  // namespace
}  // namespace vpm::pattern
