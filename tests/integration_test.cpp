// Integration tests: full pipeline runs combining generated rulesets,
// generated traffic, injection, grouped engines and every matcher — the
// "would a downstream user's deployment work" checks.
#include <gtest/gtest.h>

#include "core/matcher_factory.hpp"
#include "core/spatch.hpp"
#include "core/vpatch.hpp"
#include "helpers.hpp"
#include "ids/engine.hpp"
#include "pattern/ruleset_gen.hpp"
#include "pattern/snort_rules.hpp"
#include "traffic/match_injector.hpp"
#include "traffic/trace.hpp"
#include "util/rng.hpp"

namespace vpm {
namespace {

TEST(Integration, AllEnginesAgreeOnFullPipeline) {
  // Generated S1-like ruleset (web subset), ISCX-like trace with injected
  // attacks — every engine must produce the identical alert multiset.
  pattern::RulesetConfig cfg;
  cfg.count = 600;
  cfg.seed = testutil::case_seed(101);
  const auto ruleset = pattern::generate_ruleset(cfg);
  const auto web = ruleset.web_patterns();
  auto trace = traffic::generate_trace(traffic::TraceKind::iscx_day2, 1 << 18, testutil::case_seed(55));
  traffic::inject_matches(trace, web, 0.005, testutil::case_seed(56));

  std::vector<Match> reference;
  for (core::Algorithm algo : core::available_algorithms()) {
    if (algo == core::Algorithm::naive) continue;
    const MatcherPtr m = core::make_matcher(algo, web);
    const auto got = m->find_matches(trace);
    if (reference.empty()) {
      reference = got;
      EXPECT_GT(reference.size(), 0u) << "injection should guarantee matches";
    } else {
      EXPECT_EQ(got, reference) << m->name() << " (" << testutil::seed_note() << ")";
    }
  }
}

TEST(Integration, RulesFileToEngineRoundTrip) {
  // Generate -> render to Snort syntax -> parse back -> scan: the parsed set
  // must behave identically to the original.
  pattern::RulesetConfig cfg;
  cfg.count = 150;
  cfg.seed = testutil::case_seed(103);
  const auto original = pattern::generate_ruleset(cfg);
  const std::string rules_text = pattern::render_rules(original);
  const auto parsed = pattern::patterns_from_rules(rules_text, pattern::ContentSelection::kAll);
  ASSERT_EQ(parsed.size(), original.size());

  const auto trace = traffic::generate_trace(traffic::TraceKind::iscx_day6, 1 << 16, testutil::case_seed(57));
  const auto a = core::make_matcher(core::Algorithm::vpatch, original)->count_matches(trace);
  const auto b = core::make_matcher(core::Algorithm::vpatch, parsed)->count_matches(trace);
  EXPECT_EQ(a, b) << testutil::seed_note();
}

TEST(Integration, IdsEngineMatchesWholeStreamScan) {
  // Chunked flow inspection through the IDS engine == direct scan of the
  // whole stream with the same group's matcher.
  pattern::RulesetConfig cfg;
  cfg.count = 200;
  cfg.seed = testutil::case_seed(104);
  const auto ruleset = pattern::generate_ruleset(cfg);
  auto stream = traffic::generate_trace(traffic::TraceKind::iscx_day2, 1 << 16, testutil::case_seed(58));
  traffic::inject_matches(stream, ruleset.web_patterns(), 0.01, testutil::case_seed(59));

  ids::IdsEngine engine(ruleset, {core::Algorithm::vpatch});
  std::vector<ids::Alert> alerts;
  util::Rng rng(testutil::case_seed(60));
  std::size_t off = 0;
  while (off < stream.size()) {
    const std::size_t len =
        std::min<std::size_t>(static_cast<std::size_t>(rng.between(1, 4000)),
                              stream.size() - off);
    engine.inspect(42, pattern::Group::http, {stream.data() + off, len}, alerts);
    off += len;
  }

  // Reference: direct scan with the http group's matcher.
  const ids::GroupedRules& rules = engine.rules();
  const auto direct = rules.matcher_for(pattern::Group::http).find_matches(stream);
  ASSERT_EQ(alerts.size(), direct.size());
  std::vector<Match> from_alerts;
  for (const ids::Alert& a : alerts) {
    // Alerts carry master ids; map the direct matches the same way.
    from_alerts.push_back({a.pattern_id, a.stream_offset});
  }
  std::vector<Match> expected;
  for (const Match& m : direct) {
    expected.push_back({rules.master_id(pattern::Group::http, m.pattern_id), m.pos});
  }
  std::sort(from_alerts.begin(), from_alerts.end());
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(from_alerts, expected) << testutil::seed_note();
}

TEST(Integration, InjectionFractionDrivesMatchCount) {
  // More injected matches -> more reported matches (Fig. 5c workload knob).
  pattern::PatternSet set;
  set.add("INJECTED-MARKER-A");
  set.add("INJECTED-MARKER-B");
  const MatcherPtr m = core::make_matcher(core::Algorithm::vpatch, set);
  std::uint64_t prev = 0;
  for (double frac : {0.0, 0.05, 0.2, 0.5}) {
    auto trace = traffic::generate_trace(traffic::TraceKind::random, 1 << 17, testutil::case_seed(61));
    traffic::inject_matches(trace, set, frac, testutil::case_seed(62));
    const auto count = m->count_matches(trace);
    EXPECT_GE(count, prev) << "fraction " << frac;
    prev = count;
  }
  EXPECT_GT(prev, 0u);
}

TEST(Integration, MemoryFootprintOrdering) {
  // The architectural claim behind the whole paper family: AC's automaton
  // dwarfs the filter-based engines' cache-resident structures.
  pattern::RulesetConfig cfg;
  cfg.count = 2000;
  cfg.seed = testutil::case_seed(105);
  const auto set = pattern::generate_ruleset(cfg);
  const auto ac = core::make_matcher(core::Algorithm::aho_corasick, set);
  const auto dfc = core::make_matcher(core::Algorithm::dfc, set);
  const auto vp = core::make_matcher(core::Algorithm::vpatch, set);
  EXPECT_GT(ac->memory_bytes(), 10u * dfc->memory_bytes());
  EXPECT_GT(ac->memory_bytes(), 10u * vp->memory_bytes());
}

TEST(Integration, ScanIsReentrantAndStateless) {
  // Two scans of different buffers with the same matcher must not interfere.
  const auto set = testutil::random_set(100, 8, testutil::case_seed(30));
  const MatcherPtr m = core::make_matcher(core::Algorithm::vpatch, set);
  const auto text1 = testutil::random_text(10000, testutil::case_seed(31));
  const auto text2 = testutil::random_text(10000, testutil::case_seed(32));
  const auto first = m->find_matches(text1);
  (void)m->find_matches(text2);
  EXPECT_EQ(m->find_matches(text1), first);
}

TEST(Integration, LargeScaleSmoke) {
  // 4 MB trace, 5K patterns, every non-naive engine agrees on match count.
  pattern::RulesetConfig cfg;
  cfg.count = 5000;
  cfg.seed = testutil::case_seed(106);
  const auto set = pattern::generate_ruleset(cfg).web_patterns();
  const auto trace = traffic::generate_trace(traffic::TraceKind::iscx_day2, 4 << 20, testutil::case_seed(63));

  const auto reference =
      core::make_matcher(core::Algorithm::aho_corasick, set)->count_matches(trace);
  EXPECT_GT(reference, 0u);
  for (core::Algorithm algo :
       {core::Algorithm::dfc, core::Algorithm::spatch, core::Algorithm::vpatch,
        core::Algorithm::wu_manber}) {
    EXPECT_EQ(core::make_matcher(algo, set)->count_matches(trace), reference)
        << core::algorithm_name(algo);
  }
}

}  // namespace
}  // namespace vpm
