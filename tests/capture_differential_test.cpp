// Capture-path determinism contract: feeding the sharded pipeline through a
// CaptureSource must produce the same alerts as the single-threaded
// references — PcapFileSource vs the inspect_pcap end-to-end pipeline over
// an evasion corpus (1/2/4 workers), and TraceSource streams bit-identical
// and alert-identical across drains under VPM_TEST_SEED, including the
// epoch remapping that manufactures fresh flows for soak churn.
#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <tuple>
#include <vector>

#include "capture/pcap_source.hpp"
#include "capture/source.hpp"
#include "capture/trace_source.hpp"
#include "helpers.hpp"
#include "ids/pcap_pipeline.hpp"
#include "net/flowgen.hpp"
#include "net/pcap.hpp"
#include "pipeline/runtime.hpp"

namespace vpm::capture {
namespace {

pattern::PatternSet web_rules() {
  pattern::PatternSet rules;
  // Patterns that occur in the generated HTTP content plus planted attack
  // strings; generic folds into every group.
  rules.add("GET /", false, pattern::Group::http);
  rules.add("HTTP/1.1", true, pattern::Group::http);
  rules.add("/etc/passwd", false, pattern::Group::http);
  rules.add("Host:", true, pattern::Group::http);
  rules.add("ion", false, pattern::Group::generic);
  rules.add("admin", true, pattern::Group::generic);
  return rules;
}

// The adversarial corpus: evasion-mode flows (handshakes, 1-byte splits,
// keep-alives, conflicting retransmits, server responses, FIN/RST teardown)
// with segment reordering on top.
std::vector<net::Packet> evasion_corpus(std::uint64_t seed) {
  net::FlowGenConfig cfg;
  cfg.flow_count = 6;
  cfg.bytes_per_flow = 24000;
  cfg.reorder_fraction = 0.3;
  cfg.seed = seed;
  cfg.dst_port = 80;
  cfg.evasion = true;
  return net::generate_flows(cfg).packets;
}

// inspect_pcap assigns dense per-file flow ids while the pipeline uses
// flow_key(tuple), so the two sides compare as multisets of the
// flow-independent alert fields.
using AlertKey = std::tuple<pattern::Group, std::uint32_t, std::uint64_t>;

std::vector<AlertKey> project(const std::vector<ids::Alert>& alerts) {
  std::vector<AlertKey> keys;
  keys.reserve(alerts.size());
  for (const ids::Alert& a : alerts) {
    keys.emplace_back(a.group, a.pattern_id, a.stream_offset);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

// Drives the runtime exactly like the sensor: poll batches out of the
// source, submit each batch, until the source exhausts.
std::vector<ids::Alert> run_pipeline_from_source(CaptureSource& source,
                                                 const pattern::PatternSet& rules,
                                                 unsigned workers,
                                                 std::size_t poll_batch) {
  pipeline::PipelineConfig cfg;
  cfg.algorithm = core::Algorithm::aho_corasick;
  cfg.workers = workers;
  cfg.batch_packets = 32;
  pipeline::PipelineRuntime rt(rules, cfg);
  rt.start();
  std::vector<net::Packet> batch;
  while (!source.exhausted()) {
    batch.clear();
    if (source.poll(batch, poll_batch) == 0) continue;
    rt.submit(std::span<const net::Packet>(batch));
  }
  rt.stop();
  return rt.alerts();
}

TEST(CaptureDifferential, PcapSourcePipelineMatchesInspectPcap) {
  const auto rules = web_rules();
  const auto packets = evasion_corpus(testutil::case_seed(110));
  const util::Bytes pcap_bytes = net::write_pcap(packets);

  const ids::PcapPipelineResult reference = ids::inspect_pcap(
      pcap_bytes, rules, {core::Algorithm::aho_corasick});
  const std::vector<AlertKey> expected = project(reference.alerts);
  ASSERT_GT(expected.size(), 0u)
      << "evasion corpus must alert (" << testutil::seed_note() << ")";

  for (unsigned workers : {1u, 2u, 4u}) {
    PcapFileSource source(pcap_bytes);
    ASSERT_EQ(source.total_packets(), packets.size());
    const std::vector<ids::Alert> alerts =
        run_pipeline_from_source(source, rules, workers, 256);
    const std::vector<AlertKey> actual = project(alerts);
    ASSERT_EQ(actual.size(), expected.size())
        << workers << " workers (" << testutil::seed_note() << ")";
    for (std::size_t i = 0; i < expected.size(); ++i) {
      ASSERT_EQ(actual[i], expected[i])
          << "first divergence at alert " << i << " with " << workers
          << " workers (" << testutil::seed_note() << ")";
    }
    EXPECT_EQ(source.stats().packets, packets.size());
    EXPECT_TRUE(source.exhausted());
  }
}

TEST(CaptureDifferential, TraceSourceStreamsAreDeterministic) {
  TraceConfig cfg;
  cfg.profile = "evasion";
  cfg.flows = 4;
  cfg.bytes_per_flow = 16384;
  cfg.seed = testutil::case_seed(111);
  cfg.epochs = 3;

  // Two independent sources drained with different batch sizes must emit
  // bit-identical packet streams.
  TraceSource a(cfg);
  TraceSource b(cfg);
  std::vector<net::Packet> pa, pb;
  while (a.poll(pa, 64) > 0) {
  }
  while (b.poll(pb, 1021) > 0) {
  }
  ASSERT_EQ(pa.size(), pb.size());
  ASSERT_EQ(pa.size(), cfg.epochs * a.packets_per_epoch());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    ASSERT_EQ(pa[i].tuple, pb[i].tuple) << "packet " << i;
    ASSERT_EQ(pa[i].timestamp_us, pb[i].timestamp_us) << "packet " << i;
    ASSERT_EQ(pa[i].tcp_seq, pb[i].tcp_seq) << "packet " << i;
    ASSERT_EQ(pa[i].payload, pb[i].payload) << "packet " << i;
  }
  EXPECT_TRUE(a.exhausted());
}

TEST(CaptureDifferential, TraceEpochsRemapToFreshFlows) {
  TraceConfig cfg;
  cfg.profile = "mixed";
  cfg.flows = 3;
  cfg.bytes_per_flow = 8192;
  cfg.seed = testutil::case_seed(112);
  cfg.epochs = 2;
  TraceSource source(cfg);
  std::vector<net::Packet> packets;
  while (source.poll(packets, 512) > 0) {
  }
  const std::size_t ppe = source.packets_per_epoch();
  ASSERT_EQ(packets.size(), 2 * ppe);

  for (std::size_t i = 0; i < ppe; ++i) {
    const net::Packet& base = packets[i];
    const net::Packet& next = packets[ppe + i];
    // Same content and classification, but a brand-new flow...
    ASSERT_EQ(next.payload, base.payload) << "packet " << i;
    ASSERT_EQ(next.tuple.dst_port, base.tuple.dst_port) << "packet " << i;
    ASSERT_NE(next.tuple.dst_ip, base.tuple.dst_ip) << "packet " << i;
    ASSERT_NE(next.tuple.hash(), base.tuple.hash()) << "packet " << i;
    // ...in strictly later capture time (idle eviction sees real gaps).
    ASSERT_GT(next.timestamp_us, base.timestamp_us) << "packet " << i;
    // Both endpoint addresses shift by the SAME epoch constant, so a
    // connection's reverse direction remaps onto the remapped tuple's
    // reversed() — direction pairing survives the epoch boundary.
    const std::uint32_t mix = next.tuple.dst_ip ^ base.tuple.dst_ip;
    ASSERT_EQ(next.tuple.src_ip, base.tuple.src_ip ^ mix) << "packet " << i;
  }
}

TEST(CaptureDifferential, TracePipelineAlertsStableAcrossRunsAndWorkers) {
  const auto rules = web_rules();
  const std::string spec =
      "trace:evasion,flows=4,bytes_per_flow=12288,epochs=2,seed=" +
      std::to_string(testutil::case_seed(113));

  // The reference: drain one source and run the single-threaded end-to-end
  // pipeline over the identical bytes via a pcap round-trip.
  auto ref_source = open_source(spec);
  std::vector<net::Packet> drained;
  while (ref_source->poll(drained, 333) > 0) {
  }
  ASSERT_GT(drained.size(), 0u);
  const ids::PcapPipelineResult reference = ids::inspect_pcap(
      net::write_pcap(drained), rules, {core::Algorithm::aho_corasick});
  const std::vector<AlertKey> expected = project(reference.alerts);
  ASSERT_GT(expected.size(), 0u) << testutil::seed_note();

  for (unsigned workers : {1u, 2u, 4u}) {
    auto source = open_source(spec);
    const std::vector<ids::Alert> alerts =
        run_pipeline_from_source(*source, rules, workers, 128);
    EXPECT_EQ(project(alerts), expected)
        << workers << " workers (" << testutil::seed_note() << ")";
  }
}

}  // namespace
}  // namespace vpm::capture
