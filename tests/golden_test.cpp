// Golden checksums freezing the synthetic workloads.
//
// Every number in EXPERIMENTS.md is regenerable only if the generators stay
// bit-stable; these tests pin small-instance FNV checksums so any change to
// a generator (RNG, corpus, length model) is caught and forces a conscious
// re-baselining of the recorded results.
#include <gtest/gtest.h>

#include "pattern/ruleset_gen.hpp"
#include "pattern/serialize.hpp"
#include "traffic/trace.hpp"
#include "util/hash.hpp"

namespace vpm {
namespace {

std::uint32_t checksum(util::ByteView b) { return util::fnv1a(b.data(), b.size()); }

std::uint32_t trace_checksum(traffic::TraceKind kind) {
  const auto t = traffic::generate_trace(kind, 8192, 42);
  return checksum(t);
}

std::uint32_t ruleset_checksum(std::size_t count, std::uint64_t seed) {
  pattern::RulesetConfig cfg;
  cfg.count = count;
  cfg.seed = seed;
  const auto set = pattern::generate_ruleset(cfg);
  return checksum(pattern::serialize_patterns(set));
}

// The expected values below were recorded from the same build that produced
// bench_output.txt; see EXPERIMENTS.md.  If a test here fails, the workloads
// changed: re-record both the checksums and the benchmark baselines.

TEST(Golden, TraceGeneratorsAreFrozen) {
  EXPECT_EQ(trace_checksum(traffic::TraceKind::iscx_day2), 0xCA4B8A93u);
  EXPECT_EQ(trace_checksum(traffic::TraceKind::iscx_day6), 0x378D9791u);
  EXPECT_EQ(trace_checksum(traffic::TraceKind::darpa2000), 0x0A0B18A0u);
  EXPECT_EQ(trace_checksum(traffic::TraceKind::random), 0x10B48A80u);
}

TEST(Golden, RulesetGeneratorIsFrozen) {
  EXPECT_EQ(ruleset_checksum(200, 7), 0x85D89BB7u);
}

}  // namespace
}  // namespace vpm
