// The telemetry subsystem's contract suite: registry semantics (idempotent
// registration, kind safety, concurrent recording — the TSan target), exact
// histogram bucketing, the pinned Prometheus text rendering, the HTTP
// exporter over a real loopback socket, NDJSON alert lines (escaping, tuple
// enrichment, multiset fidelity), the field-table-driven stats surfaces, and
// the observer property: telemetry on vs off changes zero alerts.
#include <gtest/gtest.h>

#include <algorithm>
#include <arpa/inet.h>
#include <cstdio>
#include <cstring>
#include <netinet/in.h>
#include <string>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include "helpers.hpp"
#include "net/flowgen.hpp"
#include "pipeline/runtime.hpp"
#include "telemetry/http_exporter.hpp"
#include "telemetry/json.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/ndjson_sink.hpp"
#include "telemetry/pipeline_metrics.hpp"

namespace vpm {
namespace {

using telemetry::Labels;
using telemetry::MetricsRegistry;

// ---------------------------------------------------------------- escaping

TEST(JsonEscape, CoversControlAndQuoteCharacters) {
  EXPECT_EQ(telemetry::json_escaped("plain text"), "plain text");
  EXPECT_EQ(telemetry::json_escaped("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(telemetry::json_escaped("\n\t\r\b\f"), "\\n\\t\\r\\b\\f");
  EXPECT_EQ(telemetry::json_escaped(std::string("\x01\x1f", 2)), "\\u0001\\u001f");
  // Bytes >= 0x80 pass through: the payload may be UTF-8 and JSON allows it.
  EXPECT_EQ(telemetry::json_escaped("caf\xC3\xA9"), "caf\xC3\xA9");
}

// ------------------------------------------------------------- histograms

TEST(Histogram, BoundaryValuesLandInTheirLeBucket) {
  telemetry::Histogram h({1.0, 2.0, 4.0});
  // Prometheus `le` semantics: bucket i counts v <= bounds[i].
  h.record(0.5);
  h.record(1.0);  // exactly on a bound: belongs to that bucket
  h.record(1.5);
  h.record(2.0);
  h.record(3.0);
  h.record(5.0);  // past the last bound: +Inf bucket
  const auto s = h.snapshot();
  ASSERT_EQ(s.counts.size(), 4u);
  EXPECT_EQ(s.counts[0], 2u);  // 0.5, 1.0
  EXPECT_EQ(s.counts[1], 2u);  // 1.5, 2.0
  EXPECT_EQ(s.counts[2], 1u);  // 3.0
  EXPECT_EQ(s.counts[3], 1u);  // 5.0 (+Inf)
  EXPECT_EQ(s.count, 6u);
  EXPECT_DOUBLE_EQ(s.sum, 0.5 + 1.0 + 1.5 + 2.0 + 3.0 + 5.0);
}

TEST(Histogram, QuantilesAreMonotonicAndBounded) {
  telemetry::Histogram h(telemetry::exponential_buckets(1.0, 2.0, 10));
  for (int i = 1; i <= 1000; ++i) h.record(static_cast<double>(i % 300));
  const auto s = h.snapshot();
  double prev = 0.0;
  for (double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    const double v = s.quantile(q);
    EXPECT_GE(v, prev) << "quantile must be monotonic in q (q=" << q << ")";
    prev = v;
  }
  // The +Inf bucket reports the last finite bound, never infinity.
  telemetry::Histogram tiny({1.0});
  tiny.record(100.0);
  EXPECT_DOUBLE_EQ(tiny.snapshot().quantile(0.99), 1.0);
  // Empty histogram: quantile is 0, not NaN.
  EXPECT_DOUBLE_EQ(telemetry::Histogram({1.0}).snapshot().quantile(0.5), 0.0);
}

TEST(Histogram, BucketHelpersValidateArguments) {
  EXPECT_EQ(telemetry::exponential_buckets(1.0, 2.0, 4),
            (std::vector<double>{1.0, 2.0, 4.0, 8.0}));
  EXPECT_EQ(telemetry::linear_buckets(1.0, 8.0, 3),
            (std::vector<double>{1.0, 9.0, 17.0}));
  EXPECT_THROW(telemetry::exponential_buckets(0.0, 2.0, 4), std::invalid_argument);
  EXPECT_THROW(telemetry::exponential_buckets(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(telemetry::linear_buckets(0.0, 0.0, 4), std::invalid_argument);
  EXPECT_THROW(telemetry::Histogram({2.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(telemetry::Histogram({1.0, 1.0}), std::invalid_argument);
}

// --------------------------------------------------------------- registry

TEST(MetricsRegistry, RegistrationIsIdempotentPerNameAndLabels) {
  MetricsRegistry reg;
  telemetry::Counter& a = reg.counter("ops_total", "ops", {{"worker", "0"}});
  telemetry::Counter& b = reg.counter("ops_total", "ops", {{"worker", "0"}});
  telemetry::Counter& c = reg.counter("ops_total", "ops", {{"worker", "1"}});
  EXPECT_EQ(&a, &b) << "same (name, labels) must return the same instrument";
  EXPECT_NE(&a, &c) << "different labels are a different series";

  telemetry::Histogram& h1 =
      reg.histogram("lat_seconds", "l", telemetry::latency_buckets_seconds());
  telemetry::Histogram& h2 =
      reg.histogram("lat_seconds", "l", telemetry::latency_buckets_seconds());
  EXPECT_EQ(&h1, &h2);
}

TEST(MetricsRegistry, KindAndBucketMismatchesThrow) {
  MetricsRegistry reg;
  reg.counter("ops_total", "ops");
  EXPECT_THROW(reg.gauge("ops_total", "ops"), std::invalid_argument);
  EXPECT_THROW(reg.histogram("ops_total", "ops", {1.0}), std::invalid_argument);
  reg.histogram("lat", "l", {1.0, 2.0});
  EXPECT_THROW(reg.histogram("lat", "l", {1.0, 3.0}), std::invalid_argument);
}

TEST(MetricsRegistry, PrometheusRenderingMatchesGolden) {
  MetricsRegistry reg;
  reg.counter("vpm_ops_total", "Operations performed", {{"worker", "0"}}).add(7);
  reg.gauge("vpm_depth", "Queue depth").set(-3);
  telemetry::Histogram& h =
      reg.histogram("vpm_lat_seconds", "Latency", {0.001, 0.01}, {{"worker", "0"}});
  h.record(0.0005);
  h.record(0.0005);
  h.record(0.005);
  h.record(1.0);

  // Families sort by name; histogram buckets are CUMULATIVE with an +Inf
  // terminal, followed by _sum and _count.
  const std::string expected =
      "# HELP vpm_depth Queue depth\n"
      "# TYPE vpm_depth gauge\n"
      "vpm_depth -3\n"
      "# HELP vpm_lat_seconds Latency\n"
      "# TYPE vpm_lat_seconds histogram\n"
      "vpm_lat_seconds_bucket{worker=\"0\",le=\"0.001\"} 2\n"
      "vpm_lat_seconds_bucket{worker=\"0\",le=\"0.01\"} 3\n"
      "vpm_lat_seconds_bucket{worker=\"0\",le=\"+Inf\"} 4\n"
      "vpm_lat_seconds_sum{worker=\"0\"} 1.006\n"
      "vpm_lat_seconds_count{worker=\"0\"} 4\n"
      "# HELP vpm_ops_total Operations performed\n"
      "# TYPE vpm_ops_total counter\n"
      "vpm_ops_total{worker=\"0\"} 7\n";
  EXPECT_EQ(reg.render_prometheus(), expected);
}

// The TSan target: many threads hammer shared instruments; totals must be
// exact (relaxed atomics lose ordering, never increments).
TEST(MetricsRegistry, ConcurrentRecordingIsExact) {
  MetricsRegistry reg;
  telemetry::Counter& counter = reg.counter("vpm_ops_total", "ops");
  telemetry::Gauge& gauge = reg.gauge("vpm_depth", "depth");
  telemetry::Histogram& hist = reg.histogram("vpm_lat", "lat", {1.0, 10.0, 100.0});

  constexpr int kThreads = 4;
  constexpr int kOps = 50000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kOps; ++i) {
        counter.add(2);
        gauge.add(1);
        gauge.sub(1);
        hist.record(static_cast<double>((i + t) % 150));
        if (i % 1024 == 0) {
          // Concurrent scrapes must coexist with recording.
          std::string out;
          reg.render_prometheus(out);
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(counter.value(), static_cast<std::uint64_t>(kThreads) * kOps * 2);
  EXPECT_EQ(gauge.value(), 0);
  const auto s = hist.snapshot();
  EXPECT_EQ(s.count, static_cast<std::uint64_t>(kThreads) * kOps);
}

// ----------------------------------------------------------- field table

TEST(PipelineStatsSurfaces, FieldTableCoversEveryFieldOnEverySurface) {
  std::vector<std::string> names;
  pipeline::WorkerStats::for_each_field(
      [&](const char* name, pipeline::StatKind, auto) { names.emplace_back(name); });
  EXPECT_EQ(names.size(), pipeline::WorkerStats::kFieldCount);

  pipeline::PipelineStats stats;
  stats.workers.resize(2);
  const std::string human = telemetry::describe_pipeline_stats(stats);
  std::string prom;
  telemetry::render_pipeline_prometheus(prom, stats);
  for (const std::string& n : names) {
    EXPECT_NE(human.find(' ' + n + '='), std::string::npos)
        << "field '" << n << "' missing from the human formatter";
    EXPECT_TRUE(prom.find("vpm_worker_" + n + "_total{") != std::string::npos ||
                prom.find("vpm_worker_" + n + "{") != std::string::npos)
        << "field '" << n << "' missing from the Prometheus renderer";
  }
}

TEST(PipelineStatsSurfaces, GaugesAreNeverExportedAsCounters) {
  pipeline::PipelineStats stats;
  stats.workers.resize(1);
  std::string prom;
  telemetry::render_pipeline_prometheus(prom, stats);
  // Gauges: bare name, TYPE gauge, no _total suffix.
  EXPECT_NE(prom.find("# TYPE vpm_active_flows gauge"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE vpm_rules_generation gauge"), std::string::npos);
  EXPECT_EQ(prom.find("vpm_active_flows_total"), std::string::npos);
  EXPECT_EQ(prom.find("vpm_rules_generation_total"), std::string::npos);
  // Counters: _total suffix, TYPE counter.
  EXPECT_NE(prom.find("# TYPE vpm_packets_total counter"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE vpm_worker_alerts_total counter"), std::string::npos);
}

TEST(PipelineStatsSurfaces, TotalsSumCountersAndGaugesButMaxGenerations) {
  pipeline::PipelineStats stats;
  stats.workers.resize(2);
  stats.workers[0].packets = 10;
  stats.workers[1].packets = 5;
  stats.workers[0].active_flows = 3;
  stats.workers[1].active_flows = 4;
  stats.workers[0].rules_generation = 1;  // mid-swap: workers straddle
  stats.workers[1].rules_generation = 2;
  stats.workers[0].rules_swaps = 0;
  stats.workers[1].rules_swaps = 1;
  const auto totals = stats.totals();
  EXPECT_EQ(totals.packets, 15u);           // counter: sum
  EXPECT_EQ(totals.active_flows, 7u);       // gauge: fleet-wide level sums
  EXPECT_EQ(totals.rules_generation, 2u);   // gauge_max: newest generation
  EXPECT_EQ(totals.rules_swaps, 1u);        // gauge_max, NOT sum of adoptions
}

// ----------------------------------------------------------- HTTP exporter

std::string http_request(std::uint16_t port, const std::string& head) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0)
      << std::strerror(errno);
  const std::string req = head + "\r\nHost: localhost\r\nConnection: close\r\n\r\n";
  EXPECT_EQ(::send(fd, req.data(), req.size(), 0), static_cast<ssize_t>(req.size()));
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(HttpExporter, ServesMetricsHealthzAndErrors) {
  MetricsRegistry reg;
  reg.counter("vpm_test_ops_total", "ops", {{"worker", "0"}}).add(42);

  telemetry::HttpExporterConfig cfg;
  cfg.bind_address = "127.0.0.1";
  cfg.port = 0;  // ephemeral
  telemetry::HttpExporter exporter(cfg);
  exporter.add_registry(reg);
  exporter.add_source([](std::string& out) { out += "vpm_extra_source 1\n"; });
  exporter.start();
  ASSERT_GT(exporter.port(), 0);

  const std::string metrics = http_request(exporter.port(), "GET /metrics HTTP/1.1");
  EXPECT_NE(metrics.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("text/plain; version=0.0.4; charset=utf-8"),
            std::string::npos);
  EXPECT_NE(metrics.find("vpm_test_ops_total{worker=\"0\"} 42"), std::string::npos);
  EXPECT_NE(metrics.find("vpm_extra_source 1"), std::string::npos)
      << "sources must concatenate in registration order";

  const std::string health = http_request(exporter.port(), "GET /healthz HTTP/1.1");
  EXPECT_NE(health.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(health.find("ok"), std::string::npos);

  EXPECT_NE(http_request(exporter.port(), "GET /nope HTTP/1.1").find("404"),
            std::string::npos);
  EXPECT_NE(http_request(exporter.port(), "POST /metrics HTTP/1.1").find("405"),
            std::string::npos);

  EXPECT_GE(exporter.requests_served(), 4u);
  exporter.stop();
  exporter.stop();  // idempotent
}

// ------------------------------------------------------------ NDJSON sink

net::FiveTuple test_tuple() {
  net::FiveTuple t;
  t.src_ip = 0x0A000002;  // 10.0.0.2
  t.dst_ip = 0xC0A80001;  // 192.168.0.1
  t.src_port = 49152;
  t.dst_port = 80;
  t.proto = net::IpProto::tcp;
  return t;
}

TEST(NdjsonAlertSink, EmitsSchemaWithTupleEnrichmentAndEscaping) {
  pattern::PatternSet patterns;
  patterns.add("bad\"quote\npattern", true, pattern::Group::http);

  char* buffer = nullptr;
  std::size_t buffer_size = 0;
  std::FILE* mem = open_memstream(&buffer, &buffer_size);
  ASSERT_NE(mem, nullptr);
  {
    telemetry::NdjsonAlertSink sink(mem, &patterns);
    const net::FiveTuple tuple = test_tuple();
    sink.register_flow(77, tuple, net::Direction::client_to_server);
    sink.register_flow(77, tuple, net::Direction::server_to_client);  // ignored dup

    sink.on_alert(ids::Alert{77, 0, 1234, pattern::Group::http, 3});
    sink.on_alert(ids::Alert{99, 0, 5, pattern::Group::dns, 3});  // unregistered
    sink.flush();
    EXPECT_EQ(sink.emitted(), 2u);
    EXPECT_TRUE(sink.ok());
  }
  std::fclose(mem);
  const std::string out(buffer, buffer_size);
  free(buffer);

  const std::size_t newline = out.find('\n');
  ASSERT_NE(newline, std::string::npos);
  const std::string line1 = out.substr(0, newline);
  const std::string line2 = out.substr(newline + 1);

  // Registered flow: full tuple, first registration's direction wins.
  EXPECT_NE(line1.find("\"flow\":77"), std::string::npos);
  EXPECT_NE(line1.find("\"src_ip\":\"10.0.0.2\""), std::string::npos);
  EXPECT_NE(line1.find("\"src_port\":49152"), std::string::npos);
  EXPECT_NE(line1.find("\"dst_ip\":\"192.168.0.1\""), std::string::npos);
  EXPECT_NE(line1.find("\"dst_port\":80"), std::string::npos);
  EXPECT_NE(line1.find("\"proto\":\"tcp\""), std::string::npos);
  EXPECT_NE(line1.find("\"dir\":\"c2s\""), std::string::npos);
  EXPECT_NE(line1.find("\"group\":\"http\""), std::string::npos);
  EXPECT_NE(line1.find("\"offset\":1234"), std::string::npos);
  EXPECT_NE(line1.find("\"generation\":3"), std::string::npos);
  // The match text is Pattern::printable() (control bytes already hex-
  // escaped to \x0a form) pushed through the central JSON escaper, which
  // escapes the quote and the printable form's own backslashes.
  EXPECT_NE(line1.find("\"match\":\"bad\\\"quote\\\\x0apattern\""), std::string::npos);
  // No raw control bytes may survive into the line.
  EXPECT_EQ(line1.find('\n'), std::string::npos);

  // Unregistered flow: no tuple fields, the rest intact.
  EXPECT_NE(line2.find("\"flow\":99"), std::string::npos);
  EXPECT_EQ(line2.find("src_ip"), std::string::npos);
  EXPECT_NE(line2.find("\"group\":\"dns\""), std::string::npos);
}

// ------------------------------------------------- the observer property

// Patterns that actually occur in the generated HTTP traces, so the
// differential workloads alert for sure.
pattern::PatternSet web_rules() {
  pattern::PatternSet rules;
  rules.add("GET /", false, pattern::Group::http);
  rules.add("HTTP/1.1", true, pattern::Group::http);
  rules.add("Host:", true, pattern::Group::http);
  rules.add("ion", false, pattern::Group::generic);
  return rules;
}

std::vector<net::Packet> web_traffic(std::uint64_t seed) {
  net::FlowGenConfig cfg;
  cfg.flow_count = 8;
  cfg.bytes_per_flow = 100000;
  cfg.reorder_fraction = 0.25;
  cfg.seed = seed;
  cfg.dst_port = 80;
  return net::generate_flows(cfg).packets;
}

std::vector<ids::Alert> run_pipeline(const std::vector<net::Packet>& packets,
                                     const pattern::PatternSet& rules,
                                     telemetry::MetricsRegistry* metrics,
                                     ids::AlertSink* sink = nullptr) {
  pipeline::PipelineConfig cfg;
  cfg.workers = 2;
  cfg.metrics = metrics;
  cfg.alert_sink = sink;
  pipeline::PipelineRuntime rt(rules, cfg);
  rt.start();
  rt.submit(std::span<const net::Packet>(packets));
  rt.stop();
  std::vector<ids::Alert> alerts = rt.alerts();
  std::sort(alerts.begin(), alerts.end());
  return alerts;
}

// Telemetry must be a pure observer: enabling the registry (clock reads,
// histogram records, stamped batches) changes zero alerts.
TEST(TelemetryDifferential, EnablingTelemetryChangesNoAlerts) {
  const auto rules = web_rules();
  const auto packets = web_traffic(testutil::case_seed(700));

  const auto plain = run_pipeline(packets, rules, nullptr);
  ASSERT_GT(plain.size(), 0u) << "workload must alert to be meaningful ("
                              << testutil::seed_note() << ")";

  telemetry::MetricsRegistry registry;
  const auto instrumented = run_pipeline(packets, rules, &registry);
  EXPECT_EQ(instrumented, plain);

  // And the instruments actually recorded the run.
  const telemetry::Histogram* h =
      registry.find_histogram("vpm_scan_latency_seconds", {{"worker", "0"}});
  ASSERT_NE(h, nullptr);
  EXPECT_GT(h->snapshot().count, 0u);
  const telemetry::Histogram* dwell =
      registry.find_histogram("vpm_ring_dwell_seconds", {{"worker", "0"}});
  ASSERT_NE(dwell, nullptr);
  EXPECT_GT(dwell->snapshot().count, 0u);
}

// The NDJSON sink's alert multiset equals the plain buffered path's, and
// every alert becomes exactly one parseable line.
TEST(TelemetryDifferential, NdjsonSinkPreservesTheAlertMultiset) {
  const auto rules = web_rules();
  const auto packets = web_traffic(testutil::case_seed(701));

  const auto plain = run_pipeline(packets, rules, nullptr);
  ASSERT_GT(plain.size(), 0u);

  char* buffer = nullptr;
  std::size_t buffer_size = 0;
  std::FILE* mem = open_memstream(&buffer, &buffer_size);
  ASSERT_NE(mem, nullptr);
  std::vector<ids::Alert> collected;
  ids::AlertBuffer collect(collected);
  std::uint64_t emitted = 0;
  {
    telemetry::NdjsonAlertSink sink(mem, &rules, &collect);
    run_pipeline(packets, rules, nullptr, &sink);
    sink.flush();
    emitted = sink.emitted();
    EXPECT_TRUE(sink.ok());
  }
  std::fclose(mem);
  const std::string ndjson(buffer, buffer_size);
  free(buffer);

  std::sort(collected.begin(), collected.end());
  EXPECT_EQ(collected, plain) << "NDJSON sink must forward the identical multiset";
  EXPECT_EQ(emitted, plain.size());

  // One line per alert; every line is one JSON object.
  std::size_t lines = 0;
  std::size_t pos = 0;
  while ((pos = ndjson.find('\n', pos)) != std::string::npos) {
    ++lines;
    ++pos;
  }
  EXPECT_EQ(lines, plain.size());
  EXPECT_EQ(ndjson.rfind("{\"ts_us\":", 0), 0u) << "lines start with the schema";
}

}  // namespace
}  // namespace vpm
