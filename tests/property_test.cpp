// Property-based sweeps (parameterized gtest): configuration-invariance and
// content-class robustness for the filtering engines.
//
// The properties:
//   P1  match results are invariant under chunk size, ISA, F3 size, and
//       verification-table geometry;
//   P2  every engine is exact on adversarial byte-content classes;
//   P3  injected pattern copies are always found (completeness lower bound);
//   P4  filter-only candidate counts are ISA-invariant.
#include <gtest/gtest.h>

#include "core/matcher_factory.hpp"
#include "core/spatch.hpp"
#include "core/vpatch.hpp"
#include "helpers.hpp"
#include "pattern/ruleset_gen.hpp"
#include "pattern/serialize.hpp"
#include "simd/cpu_features.hpp"
#include "traffic/match_injector.hpp"
#include "traffic/random_trace.hpp"

namespace vpm::core {
namespace {

// ---- P1: configuration invariance ------------------------------------------

struct ConfigCase {
  std::size_t chunk_size;
  unsigned f3_bits;
  unsigned bucket_bits;
};

class ConfigInvariance : public ::testing::TestWithParam<ConfigCase> {};

INSTANTIATE_TEST_SUITE_P(
    Sweep, ConfigInvariance,
    ::testing::Values(ConfigCase{64, 12, 8}, ConfigCase{64, 16, 15},
                      ConfigCase{1024, 10, 12}, ConfigCase{4096, 16, 15},
                      ConfigCase{32768, 18, 16}, ConfigCase{1 << 20, 20, 18},
                      ConfigCase{333, 13, 11}, ConfigCase{65536, 16, 15}),
    [](const auto& info) {
      return "chunk" + std::to_string(info.param.chunk_size) + "_f3" +
             std::to_string(info.param.f3_bits) + "_b" +
             std::to_string(info.param.bucket_bits);
    });

TEST_P(ConfigInvariance, SpatchMatchesOracle) {
  const ConfigCase& cc = GetParam();
  const auto set = testutil::random_set(70, 9, testutil::case_seed(111));
  const auto text = testutil::random_text(20000, testutil::case_seed(112));
  SpatchConfig cfg;
  cfg.chunk_size = cc.chunk_size;
  cfg.filters.f3_bits_log2 = cc.f3_bits;
  cfg.long_bucket_bits = cc.bucket_bits;
  const SpatchMatcher m(set, cfg);
  testutil::expect_matches_naive(m, set, text);
}

TEST_P(ConfigInvariance, VpatchMatchesOracle) {
  const ConfigCase& cc = GetParam();
  const auto set = testutil::random_set(70, 9, testutil::case_seed(113));
  const auto text = testutil::random_text(20000, testutil::case_seed(114));
  VpatchConfig cfg;
  cfg.chunk_size = cc.chunk_size;
  cfg.filters.f3_bits_log2 = cc.f3_bits;
  cfg.long_bucket_bits = cc.bucket_bits;
  const VpatchMatcher m(set, cfg);
  testutil::expect_matches_naive(m, set, text);
}

// ---- P2: content classes -------------------------------------------------------

struct ContentCase {
  const char* name;
  util::Bytes (*make)(std::size_t);
};

util::Bytes all_zero(std::size_t n) { return util::Bytes(n, 0x00); }
util::Bytes all_ff(std::size_t n) { return util::Bytes(n, 0xFF); }
util::Bytes alternating(std::size_t n) {
  util::Bytes b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = (i & 1) ? 0xAB : 0xCD;
  return b;
}
util::Bytes ramp(std::size_t n) {
  util::Bytes b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = static_cast<std::uint8_t>(i & 0xFF);
  return b;
}
util::Bytes periodic7(std::size_t n) {
  util::Bytes b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = static_cast<std::uint8_t>('a' + (i % 7));
  return b;
}

class ContentClasses
    : public ::testing::TestWithParam<std::tuple<Algorithm, ContentCase>> {};

std::vector<Algorithm> engines() {
  std::vector<Algorithm> out;
  for (Algorithm a : available_algorithms()) {
    if (a != Algorithm::naive) out.push_back(a);
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    AllEngines, ContentClasses,
    ::testing::Combine(::testing::ValuesIn(engines()),
                       ::testing::Values(ContentCase{"zeros", all_zero},
                                         ContentCase{"ff", all_ff},
                                         ContentCase{"alternating", alternating},
                                         ContentCase{"ramp", ramp},
                                         ContentCase{"periodic7", periodic7})),
    [](const auto& info) {
      std::string n = std::string(algorithm_name(std::get<0>(info.param))) + "_" +
                      std::get<1>(info.param).name;
      for (char& c : n)
        if (c == '-') c = '_';
      return n;
    });

TEST_P(ContentClasses, ExactOnAdversarialContent) {
  const auto [algo, cc] = GetParam();
  // Patterns that deliberately intersect the content classes.
  pattern::PatternSet set;
  set.add(util::Bytes{0x00, 0x00, 0x00});
  set.add(util::Bytes{0xFF, 0xFF});
  set.add(util::Bytes{0xAB, 0xCD, 0xAB});
  set.add(util::Bytes{0xCD, 0xAB});
  set.add("abcdefg");
  set.add("aabbcc");
  set.add(util::Bytes{0x01, 0x02, 0x03, 0x04, 0x05});
  const auto text = cc.make(3000);
  const MatcherPtr m = make_matcher(algo, set);
  testutil::expect_matches_naive(*m, set, text, cc.name);
}

// ---- P3: completeness under injection ----------------------------------------

class InjectionCompleteness : public ::testing::TestWithParam<Algorithm> {};

INSTANTIATE_TEST_SUITE_P(Engines, InjectionCompleteness, ::testing::ValuesIn(engines()),
                         [](const auto& info) {
                           std::string n{algorithm_name(info.param)};
                           for (char& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });

TEST_P(InjectionCompleteness, FindsAtLeastInjectedCopies) {
  pattern::RulesetConfig rcfg;
  rcfg.count = 150;
  rcfg.seed = testutil::case_seed(120);
  const auto set = pattern::generate_ruleset(rcfg);
  auto trace = traffic::generate_random_trace(1 << 16, testutil::case_seed(121));
  const auto report = traffic::inject_matches(trace, set, 0.05, testutil::case_seed(122));
  ASSERT_GT(report.injected_copies, 0u);
  const MatcherPtr m = make_matcher(GetParam(), set);
  EXPECT_GE(m->count_matches(trace), report.injected_copies) << testutil::seed_note();
}

// ---- P4: ISA-invariant filter candidates ---------------------------------------

TEST(FilterInvariance, CandidateCountsAcrossIsas) {
  const auto set = testutil::random_set(150, 10, testutil::case_seed(130));
  const auto text = testutil::random_text(60000, testutil::case_seed(131));
  const SpatchMatcher scalar(set);
  const auto ref = scalar.filter_only(text, true);
  for (Isa isa : {Isa::avx2, Isa::avx512}) {
    if (!isa_supported(isa)) continue;
    VpatchConfig cfg;
    cfg.isa = isa;
    const VpatchMatcher vec(set, cfg);
    const auto got = vec.filter_only(text, true);
    EXPECT_EQ(got.short_candidates, ref.short_candidates)
        << isa_name(isa) << " (" << testutil::seed_note() << ")";
    EXPECT_EQ(got.long_candidates, ref.long_candidates)
        << isa_name(isa) << " (" << testutil::seed_note() << ")";
  }
}

// ---- many-seed randomized differential (cheap, wide) ----------------------------

class SeedSweep : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep, ::testing::Range(0, 20));

TEST_P(SeedSweep, VpatchAlwaysMatchesOracle) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const auto set = testutil::random_set(30 + seed * 7 % 60, 2 + seed % 12,
                                        testutil::case_seed(seed * 13 + 1));
  const auto text = testutil::random_text(500 + seed * 217, testutil::case_seed(seed * 31 + 2),
                                          2 + static_cast<unsigned>(seed % 6));
  const VpatchMatcher m(set);
  testutil::expect_matches_naive(m, set, text, "seed=" + std::to_string(seed));
}

}  // namespace
}  // namespace vpm::core

// ---- pattern-db serialization ------------------------------------------------------

namespace vpm::pattern {
namespace {

TEST(Serialize, RoundTripPreservesEverything) {
  RulesetConfig cfg;
  cfg.count = 400;
  cfg.seed = testutil::case_seed(140);
  const PatternSet original = generate_ruleset(cfg);
  const PatternSet loaded = deserialize_patterns(serialize_patterns(original));
  ASSERT_EQ(loaded.size(), original.size());
  for (std::uint32_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded[i].bytes, original[i].bytes) << i;
    EXPECT_EQ(loaded[i].nocase, original[i].nocase) << i;
    EXPECT_EQ(loaded[i].group, original[i].group) << i;
  }
}

TEST(Serialize, LoadedSetBehavesIdentically) {
  RulesetConfig cfg;
  cfg.count = 200;
  cfg.seed = testutil::case_seed(141);
  const PatternSet original = generate_ruleset(cfg);
  const PatternSet loaded = deserialize_patterns(serialize_patterns(original));
  const auto text = testutil::random_text(30000, testutil::case_seed(142), 26);
  const auto a = core::make_matcher(core::Algorithm::vpatch, original)->find_matches(text);
  const auto b = core::make_matcher(core::Algorithm::vpatch, loaded)->find_matches(text);
  EXPECT_EQ(a, b) << testutil::seed_note();
}

TEST(Serialize, EmptySetRoundTrips) {
  const PatternSet loaded = deserialize_patterns(serialize_patterns(PatternSet{}));
  EXPECT_TRUE(loaded.empty());
}

TEST(Serialize, RejectsBadMagic) {
  util::Bytes junk(64, 0x55);
  EXPECT_THROW(deserialize_patterns(junk), std::invalid_argument);
}

TEST(Serialize, RejectsTruncation) {
  PatternSet set;
  set.add("pattern-one");
  set.add("pattern-two");
  auto bytes = serialize_patterns(set);
  for (std::size_t cut : {bytes.size() - 1, bytes.size() - 5, std::size_t{13}}) {
    util::Bytes t(bytes.begin(), bytes.begin() + static_cast<long>(cut));
    EXPECT_THROW(deserialize_patterns(t), std::invalid_argument) << "cut=" << cut;
  }
}

TEST(Serialize, RejectsInvalidGroup) {
  PatternSet set;
  set.add("x");
  auto bytes = serialize_patterns(set);
  bytes[12 + 5] = 0xEE;  // group byte of the first entry
  EXPECT_THROW(deserialize_patterns(bytes), std::invalid_argument);
}

TEST(Serialize, V2RoundTripsHeaderAndPatterns) {
  RulesetConfig cfg;
  cfg.count = 150;
  cfg.seed = testutil::case_seed(143);
  const PatternSet original = generate_ruleset(cfg);
  DbHeader header;
  header.algorithm_hint = 7;
  header.fingerprint = 0xDEADBEEFCAFEF00Dull;
  const auto bytes = serialize_patterns(original, header);

  DbHeader parsed;
  const PatternSet loaded = deserialize_patterns(bytes, &parsed);
  EXPECT_EQ(parsed.version, 2u);
  EXPECT_EQ(parsed.algorithm_hint, 7);
  EXPECT_EQ(parsed.fingerprint, 0xDEADBEEFCAFEF00Dull);
  ASSERT_EQ(loaded.size(), original.size());
  for (std::uint32_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded[i].bytes, original[i].bytes) << i;
    EXPECT_EQ(loaded[i].nocase, original[i].nocase) << i;
    EXPECT_EQ(loaded[i].group, original[i].group) << i;
  }
}

TEST(Serialize, V1InputsReportLegacyHeader) {
  PatternSet set;
  set.add("legacy");
  DbHeader parsed;
  parsed.version = 99;  // must be overwritten
  const PatternSet loaded = deserialize_patterns(serialize_patterns(set), &parsed);
  EXPECT_EQ(parsed.version, 1u);
  EXPECT_EQ(parsed.algorithm_hint, kNoAlgorithmHint);
  EXPECT_EQ(parsed.fingerprint, 0u);
  EXPECT_EQ(loaded.size(), 1u);
}

TEST(Serialize, V2RejectsTruncationAtEveryPrefix) {
  PatternSet set;
  set.add("pattern-one", true, Group::http);
  set.add("p2");
  const auto bytes = serialize_patterns(set, DbHeader{});
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_THROW(deserialize_patterns(util::ByteView(bytes.data(), cut)),
                 std::invalid_argument)
        << "cut=" << cut;
  }
}

TEST(Serialize, V2RejectsBadMagicAndVersion) {
  PatternSet set;
  set.add("x");
  auto bytes = serialize_patterns(set, DbHeader{});
  auto bad_magic = bytes;
  bad_magic[5] = '3';  // "VPMDB3" — an unknown future magic, not v1/v2
  EXPECT_THROW(deserialize_patterns(bad_magic), std::invalid_argument);
  auto bad_version = bytes;
  bad_version[8] = 3;  // v2 magic but an unsupported version field
  EXPECT_THROW(deserialize_patterns(bad_version), std::invalid_argument);
}

}  // namespace
}  // namespace vpm::pattern
