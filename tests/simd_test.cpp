// SIMD primitive tests: every vector sequence is verified against the scalar
// reference over randomized inputs — the foundation the V-PATCH kernels
// stand on.  Vector cases skip cleanly on machines without the ISA.
#include <gtest/gtest.h>

#include <array>
#include <cstring>

#include "simd/cpu_features.hpp"
#include "simd/ops.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace vpm::simd {
namespace {

util::Bytes random_bytes(std::size_t n, std::uint64_t seed) {
  util::Bytes b(n);
  util::Rng rng(seed);
  for (auto& c : b) c = rng.byte();
  return b;
}

// ---- scalar reference sanity -------------------------------------------

TEST(ScalarOps, Windows2Definition) {
  const std::uint8_t data[] = {0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99};
  std::uint32_t out[8];
  windows2_scalar(data, out, 8);
  EXPECT_EQ(out[0], 0x2211u);
  EXPECT_EQ(out[1], 0x3322u);
  EXPECT_EQ(out[7], 0x9988u);
}

TEST(ScalarOps, Windows4Definition) {
  const std::uint8_t data[] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11};
  std::uint32_t out[8];
  windows4_scalar(data, out, 8);
  EXPECT_EQ(out[0], 0x04030201u);
  EXPECT_EQ(out[7], 0x0B0A0908u);
}

TEST(ScalarOps, GatherReadsByteOffsets) {
  std::uint8_t base[64];
  for (int i = 0; i < 64; ++i) base[i] = static_cast<std::uint8_t>(i);
  const std::uint32_t idx[4] = {0, 1, 13, 60};
  std::uint32_t out[4];
  gather_u32_scalar(base, idx, out, 4);
  EXPECT_EQ(out[0], 0x03020100u);
  EXPECT_EQ(out[1], 0x04030201u);
  EXPECT_EQ(out[2], 0x100F0E0Du);
  EXPECT_EQ(out[3], 0x3F3E3D3Cu);
}

TEST(ScalarOps, FilterTestbitsMatchesBitArithmetic) {
  // words[j] low byte = 0b10101010; vals[j] & 7 selects the bit.
  std::uint32_t words[8], vals[8];
  for (unsigned j = 0; j < 8; ++j) {
    words[j] = 0xAA;
    vals[j] = j;  // bit j of 0xAA: 0,1,0,1,...
  }
  EXPECT_EQ(filter_testbits_scalar(words, vals, 8), 0b10101010u);
}

TEST(ScalarOps, LeftpackKeepsOrder) {
  std::uint32_t dst[8];
  const unsigned n = leftpack_positions_scalar(100, 0b10100101u, 8, dst);
  ASSERT_EQ(n, 4u);
  EXPECT_EQ(dst[0], 100u);
  EXPECT_EQ(dst[1], 102u);
  EXPECT_EQ(dst[2], 105u);
  EXPECT_EQ(dst[3], 107u);
}

TEST(ScalarOps, HashMulMatchesUtil) {
  std::uint32_t in[8], out[8];
  util::Rng rng(3);
  for (auto& v : in) v = static_cast<std::uint32_t>(rng());
  hash_mul_scalar(in, out, 8, 16);
  for (unsigned j = 0; j < 8; ++j) {
    EXPECT_EQ(out[j], util::multiplicative_hash(in[j], 16));
  }
}

// ---- AVX2 vs scalar -------------------------------------------------------

class Avx2Ops : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!avx2_available()) GTEST_SKIP() << "AVX2 not available";
  }
};

TEST_F(Avx2Ops, Windows2MatchesScalar) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const auto data = random_bytes(32, seed);
    std::uint32_t ref[8], got[8];
    windows2_scalar(data.data(), ref, 8);
    windows2_avx2(data.data(), got);
    for (unsigned j = 0; j < 8; ++j) EXPECT_EQ(got[j], ref[j]) << "seed " << seed << " lane " << j;
  }
}

TEST_F(Avx2Ops, Windows4MatchesScalar) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const auto data = random_bytes(32, seed);
    std::uint32_t ref[8], got[8];
    windows4_scalar(data.data(), ref, 8);
    windows4_avx2(data.data(), got);
    for (unsigned j = 0; j < 8; ++j) EXPECT_EQ(got[j], ref[j]) << "seed " << seed << " lane " << j;
  }
}

TEST_F(Avx2Ops, Windows2AtUnalignedOffsets) {
  const auto data = random_bytes(64, 99);
  for (std::size_t off = 0; off <= 48; ++off) {
    std::uint32_t ref[8], got[8];
    windows2_scalar(data.data() + off, ref, 8);
    windows2_avx2(data.data() + off, got);
    EXPECT_EQ(0, std::memcmp(ref, got, sizeof ref)) << "offset " << off;
  }
}

TEST_F(Avx2Ops, GatherMatchesScalar) {
  const auto base = random_bytes(4096 + 8, 5);
  util::Rng rng(17);
  for (int round = 0; round < 50; ++round) {
    std::uint32_t idx[8], ref[8], got[8];
    for (auto& v : idx) v = static_cast<std::uint32_t>(rng.below(4096));
    gather_u32_scalar(base.data(), idx, ref, 8);
    gather_u32_avx2(base.data(), idx, got);
    EXPECT_EQ(0, std::memcmp(ref, got, sizeof ref));
  }
}

TEST_F(Avx2Ops, HashMulMatchesScalar) {
  util::Rng rng(23);
  for (unsigned bits : {8u, 13u, 16u, 20u}) {
    std::uint32_t in[8], ref[8], got[8];
    for (auto& v : in) v = static_cast<std::uint32_t>(rng());
    hash_mul_scalar(in, ref, 8, bits);
    hash_mul_avx2(in, got, bits);
    EXPECT_EQ(0, std::memcmp(ref, got, sizeof ref)) << "bits " << bits;
  }
}

TEST_F(Avx2Ops, FilterTestbitsMatchesScalar) {
  util::Rng rng(31);
  for (int round = 0; round < 100; ++round) {
    std::uint32_t words[8], vals[8];
    for (unsigned j = 0; j < 8; ++j) {
      words[j] = static_cast<std::uint32_t>(rng());
      vals[j] = static_cast<std::uint32_t>(rng());
    }
    EXPECT_EQ(filter_testbits_avx2(words, vals), filter_testbits_scalar(words, vals, 8));
  }
}

TEST_F(Avx2Ops, LeftpackAllMasks) {
  // Exhaustive over all 256 masks: same count, same packed positions.
  for (std::uint32_t mask = 0; mask < 256; ++mask) {
    std::uint32_t ref[16] = {0}, got[16] = {0};
    const unsigned nref = leftpack_positions_scalar(1000, mask, 8, ref);
    const unsigned ngot = leftpack_positions_avx2(1000, mask, got);
    ASSERT_EQ(ngot, nref) << "mask " << mask;
    EXPECT_EQ(0, std::memcmp(ref, got, nref * sizeof(std::uint32_t))) << "mask " << mask;
  }
}

// ---- AVX-512 vs scalar -------------------------------------------------------

class Avx512Ops : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!avx512_available()) GTEST_SKIP() << "AVX-512 not available";
  }
};

TEST_F(Avx512Ops, Windows2MatchesScalar) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const auto data = random_bytes(64, seed);
    std::uint32_t ref[16], got[16];
    windows2_scalar(data.data(), ref, 16);
    windows2_avx512(data.data(), got);
    EXPECT_EQ(0, std::memcmp(ref, got, sizeof ref)) << "seed " << seed;
  }
}

TEST_F(Avx512Ops, Windows4MatchesScalar) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const auto data = random_bytes(64, seed);
    std::uint32_t ref[16], got[16];
    windows4_scalar(data.data(), ref, 16);
    windows4_avx512(data.data(), got);
    EXPECT_EQ(0, std::memcmp(ref, got, sizeof ref)) << "seed " << seed;
  }
}

TEST_F(Avx512Ops, GatherMatchesScalar) {
  const auto base = random_bytes(8192 + 8, 5);
  util::Rng rng(17);
  for (int round = 0; round < 50; ++round) {
    std::uint32_t idx[16], ref[16], got[16];
    for (auto& v : idx) v = static_cast<std::uint32_t>(rng.below(8192));
    gather_u32_scalar(base.data(), idx, ref, 16);
    gather_u32_avx512(base.data(), idx, got);
    EXPECT_EQ(0, std::memcmp(ref, got, sizeof ref));
  }
}

TEST_F(Avx512Ops, HashMulMatchesScalar) {
  util::Rng rng(23);
  for (unsigned bits : {8u, 13u, 16u, 20u}) {
    std::uint32_t in[16], ref[16], got[16];
    for (auto& v : in) v = static_cast<std::uint32_t>(rng());
    hash_mul_scalar(in, ref, 16, bits);
    hash_mul_avx512(in, got, bits);
    EXPECT_EQ(0, std::memcmp(ref, got, sizeof ref)) << "bits " << bits;
  }
}

TEST_F(Avx512Ops, FilterTestbitsMatchesScalar) {
  util::Rng rng(31);
  for (int round = 0; round < 100; ++round) {
    std::uint32_t words[16], vals[16];
    for (unsigned j = 0; j < 16; ++j) {
      words[j] = static_cast<std::uint32_t>(rng());
      vals[j] = static_cast<std::uint32_t>(rng());
    }
    EXPECT_EQ(filter_testbits_avx512(words, vals), filter_testbits_scalar(words, vals, 16));
  }
}

TEST_F(Avx512Ops, LeftpackRandomMasks) {
  util::Rng rng(41);
  for (int round = 0; round < 2000; ++round) {
    const auto mask = static_cast<std::uint32_t>(rng.below(1u << 16));
    std::uint32_t ref[32] = {0}, got[32] = {0};
    const unsigned nref = leftpack_positions_scalar(7777, mask, 16, ref);
    const unsigned ngot = leftpack_positions_avx512(7777, mask, got);
    ASSERT_EQ(ngot, nref) << "mask " << mask;
    EXPECT_EQ(0, std::memcmp(ref, got, nref * sizeof(std::uint32_t))) << "mask " << mask;
  }
}

// ---- cpu feature detection ----------------------------------------------------

TEST(CpuFeatures, DetectionIsStable) {
  const CpuFeatures& a = cpu();
  const CpuFeatures& b = cpu();
  EXPECT_EQ(&a, &b);
}

TEST(CpuFeatures, KernelImpliesBaseFeature) {
  const CpuFeatures& f = cpu();
  if (f.has_avx512_kernel()) {
    EXPECT_TRUE(f.avx512f);
    EXPECT_TRUE(f.avx512bw);
    EXPECT_TRUE(f.avx512vl);
  }
  if (f.has_avx2_kernel()) {
    EXPECT_TRUE(f.avx2);
  }
}

TEST(CpuFeatures, WrapperAvailabilityMatchesCpu) {
  EXPECT_EQ(avx2_available(), cpu().has_avx2_kernel());
  EXPECT_EQ(avx512_available(), cpu().has_avx512_kernel());
}

}  // namespace
}  // namespace vpm::simd
