// Capture-subsystem unit tests: the TPACKET_V3 ring protocol exercised
// against the in-process MockRing (frame walk, mid-block resume, drop/freeze
// accounting, snaplen truncation), the open-addressing FlowTable (collision
// chains, bounded incremental sweeps, tombstone rebuilds, million-entry
// churn), sysfs topology parsing, --source spec parsing, and the capture
// telemetry bridge.  Everything runs deterministically without root, a NIC,
// or NUMA hardware.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <span>
#include <vector>

#include "capture/afpacket_source.hpp"
#include "capture/capture_telemetry.hpp"
#include "capture/mock_ring.hpp"
#include "capture/pcap_source.hpp"
#include "capture/ring_walker.hpp"
#include "capture/source.hpp"
#include "capture/topology.hpp"
#include "capture/trace_source.hpp"
#include "helpers.hpp"
#include "net/flowgen.hpp"
#include "net/pcap.hpp"
#include "telemetry/metrics.hpp"
#include "util/flow_table.hpp"

namespace vpm::capture {
namespace {

net::Packet make_tcp_packet(std::uint32_t i, std::size_t payload_size) {
  net::Packet p;
  p.timestamp_us = 1'700'000'000'000'000ull + i * 37;
  p.tuple.src_ip = 0x0A000001u + i;
  p.tuple.dst_ip = 0xC0A80001u;
  p.tuple.src_port = static_cast<std::uint16_t>(40000 + (i % 1000));
  p.tuple.dst_port = 80;
  p.tuple.proto = net::IpProto::tcp;
  p.tcp_seq = 1000 + i;
  p.payload.resize(payload_size);
  for (std::size_t j = 0; j < payload_size; ++j) {
    p.payload[j] = static_cast<std::uint8_t>((i * 31 + j) & 0xff);
  }
  return p;
}

void expect_same_packet(const net::Packet& got, const net::Packet& want,
                        std::size_t index) {
  EXPECT_EQ(got.tuple, want.tuple) << "packet " << index;
  EXPECT_EQ(got.timestamp_us, want.timestamp_us) << "packet " << index;
  EXPECT_EQ(got.tcp_seq, want.tcp_seq) << "packet " << index;
  EXPECT_EQ(got.payload, want.payload) << "packet " << index;
}

// --- MockRing + RingWalker: the TPACKET_V3 protocol without a kernel ------

TEST(MockRingWalk, DeliversAllFramesAcrossBlocks) {
  MockRing ring(4096, 4);
  RingWalker walker(ring.data(), ring.block_size(), ring.block_count());

  std::vector<net::Packet> sent;
  for (std::uint32_t i = 0; i < 30; ++i) sent.push_back(make_tcp_packet(i, 200));

  // 30 frames at ~300 aligned bytes each span three 4 KiB blocks.
  std::span<const net::Packet> rest(sent);
  while (!rest.empty()) {
    const std::size_t n = ring.produce_block(rest);
    ASSERT_GT(n, 0u) << "ring jammed while blocks remain free";
    rest = rest.subspan(n);
  }
  EXPECT_GT(walker.occupancy(), 0.0);

  std::vector<net::Packet> got;
  EXPECT_EQ(walker.poll(got, 1000), sent.size());
  ASSERT_EQ(got.size(), sent.size());
  for (std::size_t i = 0; i < sent.size(); ++i) {
    expect_same_packet(got[i], sent[i], i);
  }

  const RingWalkStats& s = walker.stats();
  EXPECT_EQ(s.frames, sent.size());
  EXPECT_EQ(s.bytes, sent.size() * 200);
  EXPECT_EQ(s.truncated, 0u);
  EXPECT_EQ(s.skipped, 0u);
  EXPECT_GE(s.blocks, 3u);
  // Every walked block was handed back to the kernel.
  for (std::size_t i = 0; i < ring.block_count(); ++i) {
    EXPECT_TRUE(ring.kernel_owns(i)) << "block " << i;
  }
  EXPECT_EQ(walker.occupancy(), 0.0);
  EXPECT_EQ(walker.poll(got, 16), 0u) << "empty ring must poll as 0";
}

TEST(MockRingWalk, MidBlockResumeReleasesOnlyAfterLastFrame) {
  MockRing ring(4096, 2);
  RingWalker walker(ring.data(), ring.block_size(), ring.block_count());

  std::vector<net::Packet> sent;
  for (std::uint32_t i = 0; i < 8; ++i) sent.push_back(make_tcp_packet(i, 100));
  ASSERT_EQ(ring.produce_block(sent), sent.size());

  // A max_packets-bounded poll stops mid-block; the block stays user-owned
  // until its final frame is consumed.
  std::vector<net::Packet> got;
  EXPECT_EQ(walker.poll(got, 3), 3u);
  EXPECT_FALSE(ring.kernel_owns(0));
  EXPECT_DOUBLE_EQ(walker.occupancy(), 0.5);
  EXPECT_EQ(walker.poll(got, 3), 3u);
  EXPECT_FALSE(ring.kernel_owns(0));
  EXPECT_EQ(walker.poll(got, 16), 2u);
  EXPECT_TRUE(ring.kernel_owns(0));
  EXPECT_EQ(walker.occupancy(), 0.0);

  ASSERT_EQ(got.size(), sent.size());
  for (std::size_t i = 0; i < sent.size(); ++i) {
    expect_same_packet(got[i], sent[i], i);  // resume preserved order
  }
}

TEST(MockRingWalk, SlowWalkerCausesDropsAndOneFreezePerEpisode) {
  MockRing ring(4096, 2);
  RingWalker walker(ring.data(), ring.block_size(), ring.block_count());

  std::vector<net::Packet> batch;
  for (std::uint32_t i = 0; i < 10; ++i) batch.push_back(make_tcp_packet(i, 100));

  // Fill both blocks while the walker sleeps...
  ASSERT_EQ(ring.produce_block(batch), batch.size());
  ASSERT_EQ(ring.produce_block(batch), batch.size());
  // ...now the ring is full: offered frames are dropped, one freeze episode.
  EXPECT_EQ(ring.produce_block(batch), 0u);
  EXPECT_EQ(ring.drops(), batch.size());
  EXPECT_EQ(ring.freezes(), 1u);
  EXPECT_EQ(ring.produce_block(batch), 0u);
  EXPECT_EQ(ring.drops(), 2 * batch.size());
  EXPECT_EQ(ring.freezes(), 1u) << "one congestion episode, one freeze";
  EXPECT_DOUBLE_EQ(walker.occupancy(), 1.0);

  // The walker catches up; production resumes and a NEW jam is a new episode.
  std::vector<net::Packet> got;
  EXPECT_EQ(walker.poll(got, 1000), 2 * batch.size());
  ASSERT_EQ(ring.produce_block(batch), batch.size());
  ASSERT_EQ(ring.produce_block(batch), batch.size());
  EXPECT_EQ(ring.produce_block(batch), 0u);
  EXPECT_EQ(ring.freezes(), 2u);
}

TEST(MockRingWalk, SnaplenTruncationClampsPayloadPrefix) {
  MockRing ring(8192, 2);
  RingWalker walker(ring.data(), ring.block_size(), ring.block_count());

  std::vector<net::Packet> sent;
  sent.push_back(make_tcp_packet(7, 400));
  // Ethernet(14) + IPv4(20) + TCP(20) = 54 header bytes; snaplen 154 leaves
  // a 100-byte payload prefix on the wire.
  ASSERT_EQ(ring.produce_block(sent, /*snaplen=*/154), 1u);

  std::vector<net::Packet> got;
  ASSERT_EQ(walker.poll(got, 16), 1u);
  EXPECT_EQ(walker.stats().truncated, 1u);
  ASSERT_EQ(got[0].payload.size(), 100u);
  EXPECT_TRUE(std::equal(got[0].payload.begin(), got[0].payload.end(),
                         sent[0].payload.begin()));
  EXPECT_EQ(got[0].tuple, sent[0].tuple) << "headers survive the clamp";
}

// --- FlowTable: open addressing under collision pressure -------------------

// Degenerate hash: every key lands in one of four home slots, forcing long
// linear-probe chains.
struct CollidingHash {
  std::size_t operator()(std::uint64_t k) const { return k & 3; }
};

TEST(FlowTable, CollisionChainsFindEraseReinsert) {
  util::FlowTable<std::uint64_t, std::uint64_t, CollidingHash> table;
  for (std::uint64_t k = 0; k < 200; ++k) {
    auto [value, inserted] = table.find_or_emplace(k, [&] { return k * 10; });
    ASSERT_TRUE(inserted);
    ASSERT_EQ(*value, k * 10);
  }
  EXPECT_EQ(table.size(), 200u);
  for (std::uint64_t k = 0; k < 200; ++k) {
    auto [value, inserted] = table.find_or_emplace(k, [&] { return k; });
    EXPECT_FALSE(inserted) << k;
    EXPECT_EQ(*value, k * 10) << k;
  }

  for (std::uint64_t k = 0; k < 200; k += 2) EXPECT_TRUE(table.erase(k));
  EXPECT_FALSE(table.erase(0));
  EXPECT_EQ(table.size(), 100u);
  for (std::uint64_t k = 0; k < 200; ++k) {
    if (k % 2 == 0) {
      EXPECT_EQ(table.find(k), nullptr) << k;
    } else {
      ASSERT_NE(table.find(k), nullptr) << "erasing neighbors must not break "
                                           "probe chains through tombstones";
      EXPECT_EQ(*table.find(k), k * 10) << k;
    }
  }
  // Reinsert into tombstoned territory.
  for (std::uint64_t k = 0; k < 200; k += 2) {
    auto [value, inserted] = table.find_or_emplace(k, [&] { return k + 1; });
    ASSERT_TRUE(inserted);
    EXPECT_EQ(*value, k + 1);
  }
  EXPECT_EQ(table.size(), 200u);
}

TEST(FlowTable, ValuePointersStableAcrossGrowth) {
  util::FlowTable<std::uint64_t, std::uint64_t, util::U64Hash> table;
  std::vector<std::uint64_t*> pointers;
  for (std::uint64_t k = 0; k < 8; ++k) {
    pointers.push_back(table.find_or_emplace(k, [&] { return k * 7; }).first);
  }
  for (std::uint64_t k = 8; k < 5000; ++k) {
    table.find_or_emplace(k, [&] { return k; });
  }
  // Several rehashes later the early Value pointers must still be live and
  // correct (IdsEngine::Staged::flow caches exactly these pointers).
  for (std::uint64_t k = 0; k < 8; ++k) {
    EXPECT_EQ(table.find(k), pointers[k]);
    EXPECT_EQ(*pointers[k], k * 7);
  }
}

TEST(FlowTable, SweepStepMatchesFullSweep) {
  const std::uint64_t seed = testutil::case_seed(901);
  auto fill = [&](auto& table) {
    for (std::uint64_t k = 0; k < 500; ++k) {
      table.find_or_emplace(k * 2654435761u + seed, [&] { return k; });
    }
  };
  util::FlowTable<std::uint64_t, std::uint64_t, util::U64Hash> full, stepped;
  fill(full);
  fill(stepped);
  ASSERT_EQ(full.capacity(), stepped.capacity());

  const auto evict = [](std::uint64_t, std::uint64_t& v) { return v % 3 == 0; };
  const std::size_t erased_full = full.sweep(evict);

  // Bounded steps whose slot counts sum past capacity() must converge to the
  // identical eviction set — the evict_idle_step contract.
  std::size_t erased_stepped = 0;
  const std::size_t calls = stepped.capacity() / 17 + 1;
  for (std::size_t i = 0; i < calls; ++i) {
    erased_stepped += stepped.sweep_step(17, evict);
  }
  EXPECT_EQ(erased_stepped, erased_full);
  EXPECT_EQ(stepped.size(), full.size());

  std::vector<std::uint64_t> left_full, left_stepped;
  full.for_each([&](std::uint64_t k, std::uint64_t) { left_full.push_back(k); });
  stepped.for_each(
      [&](std::uint64_t k, std::uint64_t) { left_stepped.push_back(k); });
  std::sort(left_full.begin(), left_full.end());
  std::sort(left_stepped.begin(), left_stepped.end());
  EXPECT_EQ(left_stepped, left_full) << testutil::seed_note();
}

TEST(FlowTable, TombstonePileupTriggersRebuild) {
  util::FlowTable<std::uint64_t, std::uint64_t, util::U64Hash> table;
  for (std::uint64_t k = 0; k < 1000; ++k) {
    table.find_or_emplace(k, [&] { return k; });
  }
  const std::size_t grown_capacity = table.capacity();
  for (std::uint64_t k = 0; k < 900; ++k) EXPECT_TRUE(table.erase(k));
  EXPECT_EQ(table.size(), 100u);
  // Mass deletion rebuilds the table for its live size instead of probing
  // through a graveyard forever.
  EXPECT_LT(table.capacity(), grown_capacity);
  for (std::uint64_t k = 900; k < 1000; ++k) {
    ASSERT_NE(table.find(k), nullptr) << k;
    EXPECT_EQ(*table.find(k), k);
  }
}

TEST(FlowTable, MillionEntryChurnWithBoundedSweeps) {
  constexpr std::size_t kFlows = 1'000'000;
  constexpr std::size_t kStep = 1u << 16;
  util::FlowTable<std::uint64_t, std::uint64_t, util::U64Hash> table(kFlows);
  const std::size_t capacity = table.capacity();
  for (std::uint64_t k = 0; k < kFlows; ++k) {
    table.find_or_emplace(k, [&] { return k; });
  }
  EXPECT_EQ(table.size(), kFlows);
  EXPECT_EQ(table.capacity(), capacity) << "pre-sizing must avoid mid-churn rehash";

  // Evict everything via bounded steps: each call touches at most kStep
  // slots, and ceil(capacity/kStep) calls retire the full table — the
  // amortization the pipeline's eviction_max_steps relies on at 1M flows.
  std::size_t calls = 0;
  std::size_t erased = 0;
  const std::size_t max_calls = capacity / kStep + 2;
  while (table.size() > 0 && calls < max_calls) {
    const std::size_t n =
        table.sweep_step(kStep, [](std::uint64_t, std::uint64_t&) { return true; });
    EXPECT_LE(n, kStep);
    erased += n;
    ++calls;
  }
  EXPECT_EQ(erased, kFlows);
  EXPECT_EQ(table.size(), 0u);
  EXPECT_LE(calls, capacity / kStep + 1);
}

// --- Topology: sysfs parsing and CPU lists ---------------------------------

TEST(Topology, ParseCpuList) {
  const auto cpus = parse_cpu_list("0-3,8,10-11");
  ASSERT_TRUE(cpus.has_value());
  EXPECT_EQ(*cpus, (std::vector<int>{0, 1, 2, 3, 8, 10, 11}));

  const auto empty = parse_cpu_list("");
  ASSERT_TRUE(empty.has_value());
  EXPECT_TRUE(empty->empty());

  EXPECT_EQ(parse_cpu_list("a-b"), std::nullopt);
  EXPECT_EQ(parse_cpu_list("3-1"), std::nullopt);
  EXPECT_EQ(parse_cpu_list("1,,2"), std::nullopt);
  EXPECT_EQ(parse_cpu_list("-5"), std::nullopt);
}

TEST(Topology, DetectAtFabricatedSysfs) {
  namespace fs = std::filesystem;
  const fs::path root = fs::path(::testing::TempDir()) / "vpm_sysfs_two_nodes";
  fs::create_directories(root / "devices/system/node/node0");
  fs::create_directories(root / "devices/system/node/node1");
  auto write_file = [](const fs::path& p, std::string_view text) {
    std::ofstream(p) << text << "\n";
  };
  write_file(root / "devices/system/node/online", "0-1");
  write_file(root / "devices/system/node/node0/cpulist", "0,2");
  write_file(root / "devices/system/node/node1/cpulist", "1,3");

  const CpuTopology topo = CpuTopology::detect_at(root.string());
  ASSERT_EQ(topo.nodes.size(), 2u);
  EXPECT_EQ(topo.nodes[0].cpus, (std::vector<int>{0, 2}));
  EXPECT_EQ(topo.nodes[1].cpus, (std::vector<int>{1, 3}));
  EXPECT_EQ(topo.node_of(2), 0);
  EXPECT_EQ(topo.node_of(3), 1);
  EXPECT_EQ(topo.node_of(99), -1);
  EXPECT_EQ(topo.all_cpus(), (std::vector<int>{0, 1, 2, 3}));
  // --numa=auto placement: alternate sockets, node order within each rank.
  EXPECT_EQ(topo.interleaved_cpus(), (std::vector<int>{0, 1, 2, 3}));

  // No NUMA sysfs at all: degrade to one node holding the online CPUs.
  const fs::path flat = fs::path(::testing::TempDir()) / "vpm_sysfs_flat";
  fs::create_directories(flat / "devices/system/cpu");
  write_file(flat / "devices/system/cpu/online", "0-5");
  const CpuTopology single = CpuTopology::detect_at(flat.string());
  ASSERT_EQ(single.nodes.size(), 1u);
  EXPECT_EQ(single.nodes[0].id, 0);
  EXPECT_EQ(single.nodes[0].cpus, (std::vector<int>{0, 1, 2, 3, 4, 5}));

  // Even an empty root yields a usable topology (cpu 0, node 0).
  const CpuTopology fallback = CpuTopology::detect_at(
      (fs::path(::testing::TempDir()) / "vpm_sysfs_missing").string());
  ASSERT_EQ(fallback.nodes.size(), 1u);
  EXPECT_FALSE(fallback.nodes[0].cpus.empty());
}

TEST(Topology, InterleavedCpusAlternatesNodes) {
  CpuTopology topo;
  topo.nodes.push_back({0, {0, 1, 2}});
  topo.nodes.push_back({1, {4, 5}});
  EXPECT_EQ(topo.interleaved_cpus(), (std::vector<int>{0, 4, 1, 5, 2}));
}

// --- Source specs ----------------------------------------------------------

TEST(SourceSpec, TraceSpecDrainsConfiguredEpochs) {
  auto source =
      open_source("trace:mixed,flows=2,bytes_per_flow=8192,seed=5,epochs=2");
  ASSERT_NE(source, nullptr);
  EXPECT_EQ(source->kind(), "trace");
  auto* trace = dynamic_cast<TraceSource*>(source.get());
  ASSERT_NE(trace, nullptr);

  std::vector<net::Packet> drained;
  while (!source->exhausted()) {
    if (source->poll(drained, 257) == 0) break;
  }
  EXPECT_TRUE(source->exhausted());
  EXPECT_EQ(drained.size(), 2 * trace->packets_per_epoch());
  EXPECT_EQ(source->stats().packets, drained.size());
  std::vector<net::Packet> more;
  EXPECT_EQ(source->poll(more, 16), 0u) << "exhausted source must stay silent";
}

TEST(SourceSpec, PcapFileRoundTrip) {
  net::FlowGenConfig cfg;
  cfg.flow_count = 3;
  cfg.bytes_per_flow = 4096;
  cfg.seed = testutil::case_seed(902);
  const auto flows = net::generate_flows(cfg);
  const util::Bytes bytes = net::write_pcap(flows.packets);

  namespace fs = std::filesystem;
  const fs::path path = fs::path(::testing::TempDir()) / "vpm_capture_rt.pcap";
  {
    std::ofstream out(path, std::ios::binary);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }

  for (const std::string& spec : {path.string(), "pcap:" + path.string()}) {
    auto source = open_source(spec);
    ASSERT_NE(source, nullptr) << spec;
    EXPECT_EQ(source->kind(), "pcap");
    std::vector<net::Packet> drained;
    while (source->poll(drained, 64) > 0) {
    }
    EXPECT_TRUE(source->exhausted());
    ASSERT_EQ(drained.size(), flows.packets.size()) << spec;
    for (std::size_t i = 0; i < drained.size(); ++i) {
      expect_same_packet(drained[i], flows.packets[i], i);
    }
  }
}

TEST(SourceSpec, MalformedSpecsThrow) {
  EXPECT_THROW(open_source(""), std::invalid_argument);
  EXPECT_THROW(open_source("trace:nope"), std::invalid_argument);
  EXPECT_THROW(open_source("trace:mixed,flows=abc"), std::invalid_argument);
  EXPECT_THROW(open_source("trace:mixed,bogus=1"), std::invalid_argument);
  EXPECT_THROW(open_source("trace:mixed,flows"), std::invalid_argument);
  EXPECT_THROW(open_source("warp:eth0"), std::invalid_argument);
  EXPECT_THROW(open_source("afpacket:"), std::invalid_argument);
  EXPECT_THROW(open_source("pcap:/nonexistent/vpm.pcap"), std::runtime_error);
  EXPECT_THROW(open_source("/nonexistent/vpm.pcap"), std::runtime_error);
}

TEST(SourceSpec, AfPacketUnsupportedBuildThrows) {
  if (AfPacketSource::supported()) {
    GTEST_SKIP() << "built with VPM_WITH_AFPACKET; stub error path not present";
  }
  EXPECT_THROW(open_source("afpacket:lo"), std::runtime_error);
  EXPECT_THROW(open_source("afpacket:lo,blocks=8,block_kb=64,fanout=7"),
               std::runtime_error);
}

// --- Telemetry bridge ------------------------------------------------------

TEST(CaptureTelemetryTest, PublishesCountersWithSourceLabel) {
  auto source = open_source("trace:mixed,flows=2,bytes_per_flow=4096,epochs=1");
  std::vector<net::Packet> drained;
  while (source->poll(drained, 128) > 0) {
  }
  ASSERT_GT(drained.size(), 0u);

  telemetry::MetricsRegistry registry;
  CaptureTelemetry bridge(registry, source->kind());
  bridge.publish(*source);

  const std::string text = registry.render_prometheus();
  const std::string needle = "vpm_capture_packets_total{source=\"trace\"} " +
                             std::to_string(drained.size());
  EXPECT_NE(text.find(needle), std::string::npos) << text;
  EXPECT_NE(text.find("vpm_capture_bytes_total{source=\"trace\"}"),
            std::string::npos);
  EXPECT_NE(text.find("vpm_capture_kernel_drops_total{source=\"trace\"} 0"),
            std::string::npos);
  EXPECT_NE(text.find("vpm_capture_ring_occupancy_permille"), std::string::npos);
}

}  // namespace
}  // namespace vpm::capture
