// Zero-drop ruleset hot-swap determinism: swapping the compiled database at
// a known packet index (quiesce-then-swap) must partition the alert stream
// exactly by ruleset generation — for every worker count, the per-generation
// alert multisets equal a single-threaded reference performing the identical
// swap, no alert is dropped, and no alert is attributed to a generation that
// did not produce it.  The concurrent-swap stress runs under TSan in CI (the
// `swap` label) to pin the RCU publication path.
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <utility>
#include <vector>

#include "core/database.hpp"
#include "helpers.hpp"
#include "ids/pcap_pipeline.hpp"
#include "net/flowgen.hpp"
#include "pipeline/runtime.hpp"

namespace vpm::pipeline {
namespace {

pattern::PatternSet ruleset_a() {
  pattern::PatternSet rules;
  rules.add("GET /", false, pattern::Group::http);
  rules.add("HTTP/1.1", true, pattern::Group::http);
  rules.add("/etc/passwd", false, pattern::Group::http);
  rules.add("ion", false, pattern::Group::generic);
  rules.add("dns-marker", false, pattern::Group::dns);
  return rules;
}

// Overlaps A on two patterns, drops the rest, adds new ones — so a scan
// under the wrong generation produces a detectably different alert set.
pattern::PatternSet ruleset_b() {
  pattern::PatternSet rules;
  rules.add("GET /", false, pattern::Group::http);
  rules.add("Host:", true, pattern::Group::http);
  rules.add("admin", true, pattern::Group::generic);
  rules.add("er", false, pattern::Group::generic);
  rules.add("query", false, pattern::Group::dns);
  return rules;
}

// HTTP flows (reordered segments) to port 80 + recurring UDP datagrams to
// port 53, deterministically interleaved.
std::vector<net::Packet> mixed_traffic(std::uint64_t seed) {
  net::FlowGenConfig cfg;
  cfg.flow_count = 8;
  cfg.bytes_per_flow = 40000;
  cfg.reorder_fraction = 0.3;
  cfg.seed = seed;
  cfg.dst_port = 80;
  auto flows = net::generate_flows(cfg);

  std::vector<net::Packet> packets;
  packets.reserve(flows.packets.size() + 128);
  util::Rng rng(seed + 1);
  std::uint32_t udp_counter = 0;
  for (net::Packet& p : flows.packets) {
    packets.push_back(std::move(p));
    if (rng.chance(0.08)) {
      net::Packet u;
      u.timestamp_us = packets.back().timestamp_us;
      u.tuple.src_ip = 0x0A020000u + (udp_counter % 4);
      u.tuple.dst_ip = 0xC0A80005u;
      u.tuple.src_port = 5353;
      u.tuple.dst_port = 53;
      u.tuple.proto = net::IpProto::udp;
      u.payload = util::to_bytes(udp_counter % 2 == 0 ? "query dns-marker admin"
                                                      : "an ionized version");
      ++udp_counter;
      packets.push_back(std::move(u));
    }
  }
  return packets;
}

// Single-threaded reference performing the identical swaps at the given
// packet indices: one reassembler (its TCP buffers survive each swap,
// exactly like a pipeline worker's), one engine whose rules are swapped
// with the same quiesce-boundary semantics (flush staged, reset flow carry,
// adopt).
using SwapPoint = std::pair<std::size_t, DatabasePtr>;

std::vector<ids::Alert> reference_with_swaps(const std::vector<net::Packet>& packets,
                                             const DatabasePtr& db_initial,
                                             const std::vector<SwapPoint>& swaps) {
  ids::IdsEngine engine(std::make_shared<const ids::GroupedRules>(db_initial));
  std::vector<ids::Alert> alerts;
  ids::AlertBuffer sink(alerts);
  net::TcpReassembler reassembler([&](const net::StreamChunk& chunk) {
    engine.inspect(flow_key(chunk.tuple), ids::classify_port(chunk.server_port),
                   chunk.data, sink);
  });
  reassembler.on_connection_end([&](const net::FiveTuple& client, net::EndReason) {
    engine.close_flow(flow_key(client));
    engine.close_flow(flow_key(client.reversed()));
  });
  for (std::size_t i = 0; i < packets.size(); ++i) {
    for (const SwapPoint& s : swaps) {
      if (i == s.first) {
        engine.swap_rules(std::make_shared<const ids::GroupedRules>(s.second), sink);
      }
    }
    const net::Packet& p = packets[i];
    if (p.tuple.proto == net::IpProto::tcp) {
      reassembler.ingest(p);
    } else {
      engine.inspect(flow_key(p.tuple), ids::classify_port(p.tuple.dst_port), p.payload,
                     sink);
    }
  }
  std::sort(alerts.begin(), alerts.end());
  return alerts;
}

std::vector<ids::Alert> alerts_of_generation(const std::vector<ids::Alert>& alerts,
                                             std::uint64_t generation) {
  std::vector<ids::Alert> out;
  for (const ids::Alert& a : alerts) {
    if (a.generation == generation) out.push_back(a);
  }
  return out;
}

class PipelineSwap : public ::testing::TestWithParam<core::Algorithm> {};

TEST_P(PipelineSwap, PerGenerationAlertsEqualSingleThreadedReference) {
  const core::Algorithm algorithm = GetParam();
  if (!core::algorithm_available(algorithm)) GTEST_SKIP() << "algorithm unavailable";

  const auto packets = mixed_traffic(testutil::case_seed(120));
  const std::size_t swap_index = packets.size() / 2;
  const DatabasePtr db_a = compile(algorithm, ruleset_a());
  const DatabasePtr db_b = compile(algorithm, ruleset_b());

  const auto expected = reference_with_swaps(packets, db_a, {{swap_index, db_b}});
  const auto expected_a = alerts_of_generation(expected, db_a->generation());
  const auto expected_b = alerts_of_generation(expected, db_b->generation());
  ASSERT_GT(expected_a.size(), 0u) << "generation A must alert (" << testutil::seed_note()
                                   << ")";
  ASSERT_GT(expected_b.size(), 0u) << "generation B must alert (" << testutil::seed_note()
                                   << ")";
  // The reference itself must never misattribute.
  ASSERT_EQ(expected_a.size() + expected_b.size(), expected.size());

  for (unsigned workers : {1u, 2u, 4u}) {
    for (std::size_t batch : {std::size_t{1}, std::size_t{32}}) {
      PipelineConfig cfg;
      cfg.workers = workers;
      cfg.batch_packets = batch;
      PipelineRuntime rt(db_a, cfg);
      EXPECT_EQ(rt.generation(), db_a->generation());
      rt.start();
      for (std::size_t i = 0; i < swap_index; ++i) rt.submit(packets[i]);
      // Quiesce-then-swap: every packet before the boundary is scanned under
      // A, everything after under B — the exact-partition recipe.
      rt.quiesce();
      rt.swap_database(db_b);
      EXPECT_EQ(rt.generation(), db_b->generation());
      for (std::size_t i = swap_index; i < packets.size(); ++i) rt.submit(packets[i]);
      rt.stop();

      const auto& stats = rt.stats();
      EXPECT_EQ(stats.dropped_backpressure, 0u);
      EXPECT_EQ(stats.routed, packets.size());
      EXPECT_EQ(stats.totals().rules_generation, db_b->generation());

      std::vector<ids::Alert> actual = rt.alerts();
      std::sort(actual.begin(), actual.end());
      const auto actual_a = alerts_of_generation(actual, db_a->generation());
      const auto actual_b = alerts_of_generation(actual, db_b->generation());
      ASSERT_EQ(actual_a.size() + actual_b.size(), actual.size())
          << "alert attributed to a generation that never ran (" << workers
          << " workers, batch " << batch << ", " << testutil::seed_note() << ")";
      EXPECT_EQ(actual_a, expected_a)
          << "generation-A alerts diverge with " << workers << " workers, batch "
          << batch << " (" << core::algorithm_name(algorithm) << ", "
          << testutil::seed_note() << ")";
      EXPECT_EQ(actual_b, expected_b)
          << "generation-B alerts diverge with " << workers << " workers, batch "
          << batch << " (" << core::algorithm_name(algorithm) << ", "
          << testutil::seed_note() << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Algorithms, PipelineSwap,
                         ::testing::Values(core::Algorithm::aho_corasick,
                                           core::Algorithm::vpatch),
                         [](const auto& info) {
                           std::string name(core::algorithm_name(info.param));
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

// Chained swaps: A -> B -> A' (a recompile of A, distinct generation).  The
// old generation's compiled tables must retire without disturbing later
// generations, and each segment must match its own reference.
TEST(PipelineSwapExtra, BackToBackSwapsPartitionExactly) {
  const auto packets = mixed_traffic(testutil::case_seed(121));
  const std::size_t third = packets.size() / 3;
  const DatabasePtr db1 = compile(core::Algorithm::vpatch, ruleset_a());
  const DatabasePtr db2 = compile(core::Algorithm::vpatch, ruleset_b());
  const DatabasePtr db3 = compile(core::Algorithm::vpatch, ruleset_a());
  EXPECT_EQ(db1->fingerprint(), db3->fingerprint());
  EXPECT_NE(db1->generation(), db3->generation());

  const auto expected =
      reference_with_swaps(packets, db1, {{third, db2}, {2 * third, db3}});

  PipelineConfig cfg;
  cfg.workers = 4;
  cfg.batch_packets = 7;
  PipelineRuntime rt(db1, cfg);
  rt.start();
  for (std::size_t i = 0; i < packets.size(); ++i) {
    if (i == third) {
      rt.quiesce();
      rt.swap_database(db2);
    }
    if (i == 2 * third) {
      rt.quiesce();
      rt.swap_database(db3);
    }
    rt.submit(packets[i]);
  }
  rt.stop();

  std::vector<ids::Alert> actual = rt.alerts();
  std::sort(actual.begin(), actual.end());
  EXPECT_EQ(actual, expected) << testutil::seed_note();
  EXPECT_EQ(rt.stats().totals().rules_swaps, 2u);
}

// Concurrent publication stress (the TSan target): a control thread swaps
// databases while the producer keeps submitting.  No determinism claim —
// the assertions are zero drops, every alert attributed to a published
// generation, and final adoption of the last generation everywhere.
TEST(PipelineSwapExtra, ConcurrentSwapsWhileStreaming) {
  const auto packets = mixed_traffic(testutil::case_seed(122));
  const DatabasePtr db_a = compile(core::Algorithm::vpatch, ruleset_a());
  const DatabasePtr db_b = compile(core::Algorithm::vpatch, ruleset_b());
  const DatabasePtr db_final = compile(core::Algorithm::vpatch, ruleset_a());

  PipelineConfig cfg;
  cfg.workers = 2;
  cfg.batch_packets = 4;
  PipelineRuntime rt(db_a, cfg);
  rt.start();

  std::thread control([&] {
    for (int i = 0; i < 25; ++i) {
      rt.swap_database(i % 2 == 0 ? db_b : db_a);
      std::this_thread::yield();
    }
    rt.swap_database(db_final);
  });
  for (const net::Packet& p : packets) rt.submit(p);
  control.join();
  // The final publication may have landed after the last packet; quiesce so
  // idle workers adopt it, then drain.
  rt.quiesce();
  for (;;) {
    const auto s = rt.stats();
    bool all = true;
    for (const auto& w : s.workers) {
      all = all && w.rules_generation == db_final->generation();
    }
    if (all) break;
    std::this_thread::yield();
  }
  rt.stop();

  EXPECT_EQ(rt.stats().dropped_backpressure, 0u);
  EXPECT_EQ(rt.stats().routed, packets.size());
  for (const ids::Alert& a : rt.alerts()) {
    const bool known = a.generation == db_a->generation() ||
                       a.generation == db_b->generation() ||
                       a.generation == db_final->generation();
    EXPECT_TRUE(known) << "alert carries unpublished generation " << a.generation;
  }
  EXPECT_EQ(rt.stats().totals().rules_generation, db_final->generation());
}

}  // namespace
}  // namespace vpm::pipeline
