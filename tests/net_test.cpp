// Network substrate tests: pcap round-trip and robustness, TCP reassembly
// semantics (ordering, overlap trimming, budget limits), flow generation,
// and the full pcap -> reassembly -> IDS pipeline.
#include <gtest/gtest.h>

#include <algorithm>

#include "helpers.hpp"
#include "ids/pcap_pipeline.hpp"
#include "net/flowgen.hpp"
#include "net/pcap.hpp"
#include "net/reassembly.hpp"

namespace vpm::net {
namespace {

FiveTuple tuple_a() {
  FiveTuple t;
  t.src_ip = 0x0A000002;
  t.dst_ip = 0xC0A80001;
  t.src_port = 49152;
  t.dst_port = 80;
  t.proto = IpProto::tcp;
  return t;
}

Packet make_packet(const FiveTuple& t, std::uint32_t seq, std::string_view payload,
                   std::uint64_t ts = 0) {
  Packet p;
  p.timestamp_us = ts;
  p.tuple = t;
  p.tcp_seq = seq;
  p.payload = util::to_bytes(payload);
  return p;
}

// ---- pcap -----------------------------------------------------------------

TEST(Pcap, RoundTripTcpPackets) {
  std::vector<Packet> packets;
  packets.push_back(make_packet(tuple_a(), 1000, "GET / HTTP/1.1\r\n", 5));
  packets.push_back(make_packet(tuple_a(), 1016, "Host: x\r\n\r\n", 6));
  const auto bytes = write_pcap(packets);
  const auto parsed = read_pcap(bytes);
  ASSERT_EQ(parsed.packets.size(), 2u);
  EXPECT_EQ(parsed.skipped_records, 0u);
  for (std::size_t i = 0; i < packets.size(); ++i) {
    EXPECT_EQ(parsed.packets[i].tuple, packets[i].tuple) << i;
    EXPECT_EQ(parsed.packets[i].tcp_seq, packets[i].tcp_seq) << i;
    EXPECT_EQ(parsed.packets[i].payload, packets[i].payload) << i;
    EXPECT_EQ(parsed.packets[i].timestamp_us, packets[i].timestamp_us) << i;
  }
}

TEST(Pcap, RoundTripUdpPacket) {
  Packet p = make_packet(tuple_a(), 0, "dns-ish payload");
  p.tuple.proto = IpProto::udp;
  p.tuple.dst_port = 53;
  const auto parsed = read_pcap(write_pcap({p}));
  ASSERT_EQ(parsed.packets.size(), 1u);
  EXPECT_EQ(parsed.packets[0].tuple.proto, IpProto::udp);
  EXPECT_EQ(parsed.packets[0].payload, p.payload);
}

TEST(Pcap, EmptyCapture) {
  const auto parsed = read_pcap(write_pcap({}));
  EXPECT_TRUE(parsed.packets.empty());
}

TEST(Pcap, BinaryPayloadSurvives) {
  Packet p = make_packet(tuple_a(), 7, "");
  for (int i = 0; i < 300; ++i) p.payload.push_back(static_cast<std::uint8_t>(i & 0xFF));
  const auto parsed = read_pcap(write_pcap({p}));
  ASSERT_EQ(parsed.packets.size(), 1u);
  EXPECT_EQ(parsed.packets[0].payload, p.payload);
}

TEST(Pcap, RejectsBadMagic) {
  util::Bytes junk(64, 0x42);
  EXPECT_THROW(read_pcap(junk), std::invalid_argument);
}

TEST(Pcap, RejectsTruncatedHeader) {
  util::Bytes tiny(10, 0);
  EXPECT_THROW(read_pcap(tiny), std::invalid_argument);
}

TEST(Pcap, SkipsTruncatedRecordTail) {
  auto bytes = write_pcap({make_packet(tuple_a(), 1, "hello world")});
  bytes.resize(bytes.size() - 4);  // chop the last frame
  const auto parsed = read_pcap(bytes);
  EXPECT_EQ(parsed.packets.size(), 0u);
  EXPECT_EQ(parsed.skipped_records, 1u);
}

// ---- reassembly -----------------------------------------------------------------

struct Collected {
  util::Bytes stream;
  std::vector<std::uint64_t> offsets;
};

TcpReassembler::ChunkCallback collector(Collected& c) {
  return [&c](const FiveTuple&, std::uint64_t off, util::ByteView chunk) {
    c.offsets.push_back(off);
    EXPECT_EQ(off, c.stream.size()) << "chunks must be delivered in order";
    c.stream.insert(c.stream.end(), chunk.begin(), chunk.end());
  };
}

TEST(Reassembly, InOrderSegments) {
  Collected c;
  TcpReassembler r(collector(c));
  const auto t = tuple_a();
  r.ingest(make_packet(t, 100, "hello "));
  r.ingest(make_packet(t, 106, "world"));
  EXPECT_EQ(util::to_string(c.stream), "hello world");
}

TEST(Reassembly, OutOfOrderSegmentsReordered) {
  Collected c;
  TcpReassembler r(collector(c));
  const auto t = tuple_a();
  r.ingest(make_packet(t, 100, "AAA"));
  r.ingest(make_packet(t, 109, "CCC"));  // gap
  r.ingest(make_packet(t, 103, "bbbbbb"));
  EXPECT_EQ(util::to_string(c.stream), "AAAbbbbbbCCC");
}

TEST(Reassembly, RetransmissionFirstWins) {
  Collected c;
  TcpReassembler r(collector(c));
  const auto t = tuple_a();
  r.ingest(make_packet(t, 0, "original"));
  r.ingest(make_packet(t, 0, "OVERRIDE"));  // full retransmission, ignored
  EXPECT_EQ(util::to_string(c.stream), "original");
  EXPECT_EQ(r.duplicate_bytes_trimmed(), 8u);
}

TEST(Reassembly, PartialOverlapTrimmed) {
  Collected c;
  TcpReassembler r(collector(c));
  const auto t = tuple_a();
  r.ingest(make_packet(t, 0, "abcdef"));
  r.ingest(make_packet(t, 4, "EFghij"));  // first 2 bytes overlap delivered data
  EXPECT_EQ(util::to_string(c.stream), "abcdefghij");
}

TEST(Reassembly, InitialSequenceIsPinnedPerFlow) {
  Collected c;
  TcpReassembler r(collector(c));
  const auto t = tuple_a();
  r.ingest(make_packet(t, 0xFFFFFFF0u, "wrap"));
  r.ingest(make_packet(t, 0xFFFFFFF4u, "around"));  // crosses the 32-bit wrap
  EXPECT_EQ(util::to_string(c.stream), "wraparound");
}

TEST(Reassembly, FlowsAreIndependent) {
  Collected c;
  std::size_t chunks = 0;
  TcpReassembler r([&](const FiveTuple&, std::uint64_t, util::ByteView) { ++chunks; });
  auto t1 = tuple_a();
  auto t2 = tuple_a();
  t2.src_port = 55555;
  r.ingest(make_packet(t1, 10, "flow-one"));
  r.ingest(make_packet(t2, 999, "flow-two"));
  EXPECT_EQ(chunks, 2u);
  EXPECT_EQ(r.active_flows(), 2u);
  r.close_flow(t1);
  EXPECT_EQ(r.active_flows(), 1u);
}

TEST(Reassembly, BufferBudgetDropsFloods) {
  ReassemblyLimits limits;
  limits.max_buffered_bytes = 64;
  std::size_t chunks = 0;
  TcpReassembler r([&](const FiveTuple&, std::uint64_t, util::ByteView) { ++chunks; },
                   limits);
  const auto t = tuple_a();
  // Pin the initial sequence number, then flood with segments after a hole:
  // the 64-byte budget admits only the first four 16-byte segments.
  r.ingest(make_packet(t, 100, "x"));
  for (std::uint32_t i = 1; i <= 10; ++i) {
    r.ingest(make_packet(t, 100 + i * 16, std::string(16, 'y')));
  }
  EXPECT_GE(r.dropped_segments(), 6u);
  EXPECT_EQ(chunks, 1u) << "only the pinning segment is in order";
}

TEST(Reassembly, EvictIdleRemovesOnlyStaleFlows) {
  std::size_t chunks = 0;
  TcpReassembler r([&](const FiveTuple&, std::uint64_t, util::ByteView) { ++chunks; });
  auto stale = tuple_a();
  auto fresh = tuple_a();
  fresh.src_port = 55555;
  r.ingest(make_packet(stale, 0, "old flow", /*ts=*/1000));
  r.ingest(make_packet(fresh, 0, "new flow", /*ts=*/900000));
  ASSERT_EQ(r.active_flows(), 2u);

  const auto evicted = r.evict_idle(/*now_us=*/1000000, /*idle_us=*/500000);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], stale);
  EXPECT_EQ(r.active_flows(), 1u);
  EXPECT_EQ(r.evicted_flows(), 1u);

  // idle_us == 0 disables eviction entirely.
  EXPECT_TRUE(r.evict_idle(1u << 30, 0).empty());
  EXPECT_EQ(r.active_flows(), 1u);
}

TEST(Reassembly, EvictedFlowForgetsPendingAndRestartsClean) {
  std::string stream;
  std::vector<std::uint64_t> offsets;
  TcpReassembler r([&](const FiveTuple&, std::uint64_t off, util::ByteView chunk) {
    offsets.push_back(off);
    stream += util::to_string(chunk);
  });
  const auto t = tuple_a();
  r.ingest(make_packet(t, 100, "head", 10));
  r.ingest(make_packet(t, 120, "buffered-beyond-a-hole", 20));  // pending, never drains
  EXPECT_EQ(stream, "head");

  ASSERT_EQ(r.evict_idle(2000000, 1000).size(), 1u);
  // The flow returns after eviction: it re-pins a fresh initial sequence and
  // the stale buffered segment must not resurface.
  r.ingest(make_packet(t, 5000, "restarted", 3000000));
  EXPECT_EQ(stream, "headrestarted");
  ASSERT_EQ(offsets.size(), 2u);
  EXPECT_EQ(offsets[1], 0u) << "post-eviction data re-pins at stream offset 0";
}

// The satellite churn contract at the reassembler layer: short-lived flows
// plus out-of-order floods; periodic eviction keeps the flow table bounded
// and the drop/evict counters account for the abuse.
TEST(Reassembly, AdversarialChurnStaysBounded) {
  ReassemblyLimits limits;
  limits.max_buffered_bytes = 2048;
  std::size_t chunks = 0;
  TcpReassembler r([&](const FiveTuple&, std::uint64_t, util::ByteView) { ++chunks; },
                   limits);

  constexpr std::uint32_t kFlows = 2000;
  std::size_t max_active = 0;
  std::uint64_t now_us = 0;
  for (std::uint32_t f = 0; f < kFlows; ++f) {
    now_us += 100;
    FiveTuple t = tuple_a();
    t.src_ip = 0x0A000000u + f;
    t.src_port = static_cast<std::uint16_t>(40000 + (f % 10000));
    r.ingest(make_packet(t, 0, "hello", now_us));
    // Out-of-order flood behind a hole: most of it must hit the budget.
    for (std::uint32_t k = 0; k < 8; ++k) {
      r.ingest(make_packet(t, 10000 + k * 600, std::string(600, 'x'), now_us));
    }
    if (f % 64 == 0) {
      r.evict_idle(now_us, /*idle_us=*/3200);
      max_active = std::max(max_active, r.active_flows());
    }
  }
  r.evict_idle(now_us + 10000, 3200);
  EXPECT_EQ(r.active_flows(), 0u);
  EXPECT_LT(max_active, 256u) << "flow table must stay bounded under churn";
  EXPECT_GT(r.dropped_segments(), 0u);
  EXPECT_GE(r.evicted_flows(), kFlows - 256u);
  EXPECT_EQ(chunks, kFlows) << "each flow's single in-order segment is delivered";
}

TEST(Reassembly, EmptyPayloadIgnored) {
  std::size_t chunks = 0;
  TcpReassembler r([&](const FiveTuple&, std::uint64_t, util::ByteView) { ++chunks; });
  r.ingest(make_packet(tuple_a(), 0, ""));
  EXPECT_EQ(chunks, 0u);
  EXPECT_EQ(r.active_flows(), 0u);
}

// ---- flowgen --------------------------------------------------------------------

TEST(FlowGen, ReassemblesBackToOriginalStreams) {
  FlowGenConfig cfg;
  cfg.flow_count = 3;
  cfg.bytes_per_flow = 40000;
  cfg.seed = 5;
  const auto flows = generate_flows(cfg);
  ASSERT_EQ(flows.streams.size(), 3u);

  std::unordered_map<std::uint64_t, util::Bytes> rebuilt;
  TcpReassembler r([&](const FiveTuple& t, std::uint64_t, util::ByteView chunk) {
    auto& s = rebuilt[t.hash()];
    s.insert(s.end(), chunk.begin(), chunk.end());
  });
  for (const Packet& p : flows.packets) r.ingest(p);
  for (std::size_t f = 0; f < flows.streams.size(); ++f) {
    EXPECT_EQ(rebuilt[flows.tuples[f].hash()], flows.streams[f]) << "flow " << f;
  }
}

TEST(FlowGen, ReorderingStillReassembles) {
  FlowGenConfig cfg;
  cfg.flow_count = 2;
  cfg.bytes_per_flow = 30000;
  cfg.reorder_fraction = 0.4;
  cfg.seed = 6;
  const auto flows = generate_flows(cfg);
  std::unordered_map<std::uint64_t, util::Bytes> rebuilt;
  TcpReassembler r([&](const FiveTuple& t, std::uint64_t, util::ByteView chunk) {
    auto& s = rebuilt[t.hash()];
    s.insert(s.end(), chunk.begin(), chunk.end());
  });
  for (const Packet& p : flows.packets) r.ingest(p);
  for (std::size_t f = 0; f < flows.streams.size(); ++f) {
    EXPECT_EQ(rebuilt[flows.tuples[f].hash()], flows.streams[f]) << "flow " << f;
  }
}

TEST(FlowGen, Deterministic) {
  FlowGenConfig cfg;
  cfg.flow_count = 2;
  cfg.bytes_per_flow = 10000;
  cfg.seed = 7;
  const auto a = generate_flows(cfg);
  const auto b = generate_flows(cfg);
  ASSERT_EQ(a.packets.size(), b.packets.size());
  for (std::size_t i = 0; i < a.packets.size(); ++i) {
    EXPECT_EQ(a.packets[i].payload, b.packets[i].payload) << i;
  }
}

TEST(FlowGen, SegmentSizesRespectMss) {
  FlowGenConfig cfg;
  cfg.flow_count = 1;
  cfg.bytes_per_flow = 50000;
  cfg.mss = 512;
  cfg.seed = 8;
  for (const Packet& p : generate_flows(cfg).packets) {
    EXPECT_LE(p.payload.size(), 512u);
    EXPECT_GT(p.payload.size(), 0u);
  }
}

}  // namespace
}  // namespace vpm::net

namespace vpm::ids {
namespace {

TEST(PcapPipeline, ClassifyPorts) {
  EXPECT_EQ(classify_port(80), pattern::Group::http);
  EXPECT_EQ(classify_port(8080), pattern::Group::http);
  EXPECT_EQ(classify_port(53), pattern::Group::dns);
  EXPECT_EQ(classify_port(21), pattern::Group::ftp);
  EXPECT_EQ(classify_port(25), pattern::Group::smtp);
  EXPECT_EQ(classify_port(12345), pattern::Group::generic);
}

TEST(PcapPipeline, EndToEndMatchesDirectScan) {
  // Generate flows, plant a pattern, write pcap (with reordering), run the
  // pipeline; alerts must equal a direct scan of each reassembled stream.
  net::FlowGenConfig fcfg;
  fcfg.flow_count = 3;
  fcfg.bytes_per_flow = 60000;
  fcfg.reorder_fraction = 0.3;
  fcfg.seed = 11;
  auto flows = net::generate_flows(fcfg);

  pattern::PatternSet rules;
  rules.add("PLANTED-IN-FLOW", false, pattern::Group::http);
  rules.add("GET /", false, pattern::Group::http);
  // Plant the marker into flow 1's stream, then re-segment all flows from
  // the patched streams (fixed 1000-byte segments, in order).
  net::GeneratedFlows repacked = std::move(flows);
  std::copy_n("PLANTED-IN-FLOW", 15, repacked.streams[1].begin() + 1234);
  std::vector<net::Packet> packets;
  for (std::size_t f = 0; f < repacked.streams.size(); ++f) {
    const auto& s = repacked.streams[f];
    for (std::size_t off = 0; off < s.size(); off += 1000) {
      net::Packet p;
      p.tuple = repacked.tuples[f];
      p.tcp_seq = static_cast<std::uint32_t>(off);
      const std::size_t len = std::min<std::size_t>(1000, s.size() - off);
      p.payload.assign(s.begin() + static_cast<long>(off),
                       s.begin() + static_cast<long>(off + len));
      packets.push_back(std::move(p));
    }
  }

  const auto pcap = net::write_pcap(packets);
  const auto result = inspect_pcap(pcap, rules, {core::Algorithm::vpatch});
  EXPECT_EQ(result.skipped_records, 0u);
  EXPECT_EQ(result.reassembly_drops, 0u);

  // Ground truth: scan each stream directly with the http-group matcher.
  const GroupedRules grouped(rules, core::Algorithm::vpatch);
  std::size_t expected = 0;
  for (const auto& s : repacked.streams) {
    expected += grouped.matcher_for(pattern::Group::http).count_matches(s);
  }
  EXPECT_EQ(result.alerts.size(), expected);
  // The planted marker must be among the alerts.
  bool planted_found = false;
  for (const Alert& a : result.alerts) {
    if (a.pattern_id == 0) planted_found = true;
  }
  EXPECT_TRUE(planted_found);
}

TEST(PcapPipeline, UdpPayloadsScannedPerDatagram) {
  pattern::PatternSet rules;
  rules.add("dns-marker", false, pattern::Group::dns);
  net::Packet p;
  p.tuple.src_ip = 1;
  p.tuple.dst_ip = 2;
  p.tuple.src_port = 5353;
  p.tuple.dst_port = 53;
  p.tuple.proto = net::IpProto::udp;
  p.payload = util::to_bytes("xx dns-marker yy");
  const auto result = inspect_pcap(net::write_pcap({p}), rules, {core::Algorithm::spatch});
  ASSERT_EQ(result.alerts.size(), 1u);
  EXPECT_EQ(result.alerts[0].group, pattern::Group::dns);
}

}  // namespace
}  // namespace vpm::ids
