// Network substrate tests: pcap round-trip and robustness, TCP reassembly
// semantics (ordering, overlap trimming, budget limits), flow generation,
// and the full pcap -> reassembly -> IDS pipeline.
#include <gtest/gtest.h>

#include <algorithm>

#include "helpers.hpp"
#include "ids/pcap_pipeline.hpp"
#include "net/flowgen.hpp"
#include "net/pcap.hpp"
#include "net/reassembly.hpp"

namespace vpm::net {
namespace {

FiveTuple tuple_a() {
  FiveTuple t;
  t.src_ip = 0x0A000002;
  t.dst_ip = 0xC0A80001;
  t.src_port = 49152;
  t.dst_port = 80;
  t.proto = IpProto::tcp;
  return t;
}

Packet make_packet(const FiveTuple& t, std::uint32_t seq, std::string_view payload,
                   std::uint64_t ts = 0, std::uint8_t flags = kTcpPsh | kTcpAck) {
  Packet p;
  p.timestamp_us = ts;
  p.tuple = t;
  p.tcp_seq = seq;
  p.tcp_flags = flags;
  p.payload = util::to_bytes(payload);
  return p;
}

// ---- pcap -----------------------------------------------------------------

TEST(Pcap, RoundTripTcpPackets) {
  std::vector<Packet> packets;
  packets.push_back(make_packet(tuple_a(), 1000, "GET / HTTP/1.1\r\n", 5));
  packets.push_back(make_packet(tuple_a(), 1016, "Host: x\r\n\r\n", 6));
  const auto bytes = write_pcap(packets);
  const auto parsed = read_pcap(bytes);
  ASSERT_EQ(parsed.packets.size(), 2u);
  EXPECT_EQ(parsed.skipped_records, 0u);
  for (std::size_t i = 0; i < packets.size(); ++i) {
    EXPECT_EQ(parsed.packets[i].tuple, packets[i].tuple) << i;
    EXPECT_EQ(parsed.packets[i].tcp_seq, packets[i].tcp_seq) << i;
    EXPECT_EQ(parsed.packets[i].payload, packets[i].payload) << i;
    EXPECT_EQ(parsed.packets[i].timestamp_us, packets[i].timestamp_us) << i;
  }
}

TEST(Pcap, RoundTripUdpPacket) {
  Packet p = make_packet(tuple_a(), 0, "dns-ish payload");
  p.tuple.proto = IpProto::udp;
  p.tuple.dst_port = 53;
  const auto parsed = read_pcap(write_pcap({p}));
  ASSERT_EQ(parsed.packets.size(), 1u);
  EXPECT_EQ(parsed.packets[0].tuple.proto, IpProto::udp);
  EXPECT_EQ(parsed.packets[0].payload, p.payload);
}

TEST(Pcap, EmptyCapture) {
  const auto parsed = read_pcap(write_pcap({}));
  EXPECT_TRUE(parsed.packets.empty());
}

TEST(Pcap, BinaryPayloadSurvives) {
  Packet p = make_packet(tuple_a(), 7, "");
  for (int i = 0; i < 300; ++i) p.payload.push_back(static_cast<std::uint8_t>(i & 0xFF));
  const auto parsed = read_pcap(write_pcap({p}));
  ASSERT_EQ(parsed.packets.size(), 1u);
  EXPECT_EQ(parsed.packets[0].payload, p.payload);
}

TEST(Pcap, RejectsBadMagic) {
  util::Bytes junk(64, 0x42);
  EXPECT_THROW(read_pcap(junk), std::invalid_argument);
}

TEST(Pcap, RejectsTruncatedHeader) {
  util::Bytes tiny(10, 0);
  EXPECT_THROW(read_pcap(tiny), std::invalid_argument);
}

TEST(Pcap, SkipsTruncatedRecordTail) {
  auto bytes = write_pcap({make_packet(tuple_a(), 1, "hello world")});
  bytes.resize(bytes.size() - 4);  // chop the last frame
  const auto parsed = read_pcap(bytes);
  EXPECT_EQ(parsed.packets.size(), 0u);
  EXPECT_EQ(parsed.skipped_records, 1u);
}

// ---- reassembly -----------------------------------------------------------------

struct Collected {
  util::Bytes stream;
  std::vector<std::uint64_t> offsets;
};

TcpReassembler::ChunkCallback collector(Collected& c) {
  return [&c](const StreamChunk& chunk) {
    c.offsets.push_back(chunk.offset);
    EXPECT_EQ(chunk.offset, c.stream.size()) << "chunks must be delivered in order";
    c.stream.insert(c.stream.end(), chunk.data.begin(), chunk.data.end());
  };
}

TEST(Reassembly, InOrderSegments) {
  Collected c;
  TcpReassembler r(collector(c));
  const auto t = tuple_a();
  r.ingest(make_packet(t, 100, "hello "));
  r.ingest(make_packet(t, 106, "world"));
  EXPECT_EQ(util::to_string(c.stream), "hello world");
}

TEST(Reassembly, OutOfOrderSegmentsReordered) {
  Collected c;
  TcpReassembler r(collector(c));
  const auto t = tuple_a();
  r.ingest(make_packet(t, 100, "AAA"));
  r.ingest(make_packet(t, 109, "CCC"));  // gap
  r.ingest(make_packet(t, 103, "bbbbbb"));
  EXPECT_EQ(util::to_string(c.stream), "AAAbbbbbbCCC");
}

TEST(Reassembly, RetransmissionFirstWins) {
  Collected c;
  TcpReassembler r(collector(c));
  const auto t = tuple_a();
  r.ingest(make_packet(t, 0, "original"));
  r.ingest(make_packet(t, 0, "OVERRIDE"));  // full retransmission, ignored
  EXPECT_EQ(util::to_string(c.stream), "original");
  EXPECT_EQ(r.duplicate_bytes_trimmed(), 8u);
}

TEST(Reassembly, PartialOverlapTrimmed) {
  Collected c;
  TcpReassembler r(collector(c));
  const auto t = tuple_a();
  r.ingest(make_packet(t, 0, "abcdef"));
  r.ingest(make_packet(t, 4, "EFghij"));  // first 2 bytes overlap delivered data
  EXPECT_EQ(util::to_string(c.stream), "abcdefghij");
}

TEST(Reassembly, InitialSequenceIsPinnedPerFlow) {
  Collected c;
  TcpReassembler r(collector(c));
  const auto t = tuple_a();
  r.ingest(make_packet(t, 0xFFFFFFF0u, "wrap"));
  r.ingest(make_packet(t, 0xFFFFFFF4u, "around"));  // crosses the 32-bit wrap
  EXPECT_EQ(util::to_string(c.stream), "wraparound");
}

TEST(Reassembly, FlowsAreIndependent) {
  Collected c;
  std::size_t chunks = 0;
  TcpReassembler r([&](const StreamChunk&) { ++chunks; });
  auto t1 = tuple_a();
  auto t2 = tuple_a();
  t2.src_port = 55555;
  r.ingest(make_packet(t1, 10, "flow-one"));
  r.ingest(make_packet(t2, 999, "flow-two"));
  EXPECT_EQ(chunks, 2u);
  EXPECT_EQ(r.active_flows(), 2u);
  r.close_flow(t1);
  EXPECT_EQ(r.active_flows(), 1u);
}

TEST(Reassembly, BufferBudgetDropsFloods) {
  ReassemblyLimits limits;
  limits.max_buffered_bytes = 64;
  std::size_t chunks = 0;
  TcpReassembler r([&](const StreamChunk&) { ++chunks; }, limits);
  const auto t = tuple_a();
  // Pin the initial sequence number, then flood with segments after a hole:
  // the 64-byte budget admits only the first four 16-byte segments.
  r.ingest(make_packet(t, 100, "x"));
  for (std::uint32_t i = 1; i <= 10; ++i) {
    r.ingest(make_packet(t, 100 + i * 16, std::string(16, 'y')));
  }
  EXPECT_GE(r.dropped_segments(), 6u);
  EXPECT_EQ(chunks, 1u) << "only the pinning segment is in order";
}

TEST(Reassembly, EvictIdleRemovesOnlyStaleFlows) {
  std::size_t chunks = 0;
  TcpReassembler r([&](const StreamChunk&) { ++chunks; });
  auto stale = tuple_a();
  auto fresh = tuple_a();
  fresh.src_port = 55555;
  r.ingest(make_packet(stale, 0, "old flow", /*ts=*/1000));
  r.ingest(make_packet(fresh, 0, "new flow", /*ts=*/900000));
  ASSERT_EQ(r.active_flows(), 2u);

  const auto evicted = r.evict_idle(/*now_us=*/1000000, /*idle_us=*/500000);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], stale);
  EXPECT_EQ(r.active_flows(), 1u);
  EXPECT_EQ(r.evicted_flows(), 1u);

  // idle_us == 0 disables eviction entirely.
  EXPECT_TRUE(r.evict_idle(1u << 30, 0).empty());
  EXPECT_EQ(r.active_flows(), 1u);
}

TEST(Reassembly, EvictedFlowForgetsPendingAndRestartsClean) {
  std::string stream;
  std::vector<std::uint64_t> offsets;
  TcpReassembler r([&](const StreamChunk& chunk) {
    offsets.push_back(chunk.offset);
    stream += util::to_string(chunk.data);
  });
  const auto t = tuple_a();
  r.ingest(make_packet(t, 100, "head", 10));
  r.ingest(make_packet(t, 120, "buffered-beyond-a-hole", 20));  // pending, never drains
  EXPECT_EQ(stream, "head");

  ASSERT_EQ(r.evict_idle(2000000, 1000).size(), 1u);
  // The flow returns after eviction: it re-pins a fresh initial sequence and
  // the stale buffered segment must not resurface.
  r.ingest(make_packet(t, 5000, "restarted", 3000000));
  EXPECT_EQ(stream, "headrestarted");
  ASSERT_EQ(offsets.size(), 2u);
  EXPECT_EQ(offsets[1], 0u) << "post-eviction data re-pins at stream offset 0";
}

// The satellite churn contract at the reassembler layer: short-lived flows
// plus out-of-order floods; periodic eviction keeps the flow table bounded
// and the drop/evict counters account for the abuse.
TEST(Reassembly, AdversarialChurnStaysBounded) {
  ReassemblyLimits limits;
  limits.max_buffered_bytes = 2048;
  std::size_t chunks = 0;
  TcpReassembler r([&](const StreamChunk&) { ++chunks; }, limits);

  constexpr std::uint32_t kFlows = 2000;
  std::size_t max_active = 0;
  std::uint64_t now_us = 0;
  for (std::uint32_t f = 0; f < kFlows; ++f) {
    now_us += 100;
    FiveTuple t = tuple_a();
    t.src_ip = 0x0A000000u + f;
    t.src_port = static_cast<std::uint16_t>(40000 + (f % 10000));
    r.ingest(make_packet(t, 0, "hello", now_us));
    // Out-of-order flood behind a hole: most of it must hit the budget.
    for (std::uint32_t k = 0; k < 8; ++k) {
      r.ingest(make_packet(t, 10000 + k * 600, std::string(600, 'x'), now_us));
    }
    if (f % 64 == 0) {
      r.evict_idle(now_us, /*idle_us=*/3200);
      max_active = std::max(max_active, r.active_flows());
    }
  }
  r.evict_idle(now_us + 10000, 3200);
  EXPECT_EQ(r.active_flows(), 0u);
  EXPECT_LT(max_active, 256u) << "flow table must stay bounded under churn";
  EXPECT_GT(r.dropped_segments(), 0u);
  EXPECT_GE(r.evicted_flows(), kFlows - 256u);
  EXPECT_EQ(chunks, kFlows) << "each flow's single in-order segment is delivered";
}

TEST(Reassembly, EmptyPayloadIgnored) {
  std::size_t chunks = 0;
  TcpReassembler r([&](const StreamChunk&) { ++chunks; });
  r.ingest(make_packet(tuple_a(), 0, ""));
  EXPECT_EQ(chunks, 0u);
  EXPECT_EQ(r.active_flows(), 0u);
}

// ---- reassembly: evasion fixes and lifecycle ------------------------------------

// Regression (seq-wrap stall): a segment one sequence number below the pinned
// ISN — a TCP keep-alive probe, or a retransmit clipped by the capture — used
// to compute stream offset ≈ 2^32 and wedge the flow behind an unfillable
// hole.  Wrap-safe placement classifies it as before-window garbage instead.
TEST(Reassembly, SeqJustBelowIsnIsBeforeWindowNotFarFuture) {
  Collected c;
  TcpReassembler r(collector(c));
  const auto t = tuple_a();
  r.ingest(make_packet(t, 1000, "hello"));
  r.ingest(make_packet(t, 999, "K"));  // keep-alive probe below the window
  r.ingest(make_packet(t, 1005, " world"));
  EXPECT_EQ(util::to_string(c.stream), "hello world");
  EXPECT_EQ(r.dropped_segments(), 0u);
  EXPECT_EQ(r.active_flows(), 1u);
}

TEST(Reassembly, KeepAliveBelowWrappedIsnDoesNotStall) {
  Collected c;
  TcpReassembler r(collector(c));
  const auto t = tuple_a();
  // SYN at ISN 2^32-1: stream byte 0 lives at sequence 0 (wrapped).
  r.ingest(make_packet(t, 0xFFFFFFFFu, "", 0, kTcpSyn));
  r.ingest(make_packet(t, 0, "first"));
  r.ingest(make_packet(t, 0xFFFFFFFFu, "K", 0, kTcpAck));  // probe below the wrap
  r.ingest(make_packet(t, 5, "second"));
  EXPECT_EQ(util::to_string(c.stream), "firstsecond");
  EXPECT_EQ(r.dropped_segments(), 0u);
}

// Regression (duplicate-offset data loss): a longer retransmit at the same
// offset as a buffered segment used to be discarded wholesale by
// pending.emplace — losing the tail bytes the original never carried.
TEST(Reassembly, DuplicateOffsetLongerRetransmitFillsHole) {
  Collected c;
  TcpReassembler r(collector(c));
  const auto t = tuple_a();
  r.ingest(make_packet(t, 0, "ab"));     // pins, delivers [0,2)
  r.ingest(make_packet(t, 10, "XY"));    // buffered [10,12)
  r.ingest(make_packet(t, 10, "XYZW"));  // same offset, longer: tail must survive
  r.ingest(make_packet(t, 2, "cdefghij"));  // fill the hole [2,10)
  EXPECT_EQ(util::to_string(c.stream), "abcdefghijXYZW");
}

// One conflicting-segment scenario, four policies, four distinct streams.
// Segments (offsets relative to the pinned start): "x"@0 pins; "AAAA"@4
// buffered; "BBBB"@4 conflicts at an equal start; "CCCC"@2 conflicts from an
// earlier start; "DD"@6 conflicts from a later start; "f"@1 fills the hole
// and drains everything.
std::string policy_stream(OverlapPolicy p) {
  ReassemblyConfig cfg;
  cfg.overlap = p;
  Collected c;
  TcpReassembler r(collector(c), cfg);
  const auto t = tuple_a();
  r.ingest(make_packet(t, 0, "x"));
  r.ingest(make_packet(t, 4, "AAAA"));
  r.ingest(make_packet(t, 4, "BBBB"));
  r.ingest(make_packet(t, 2, "CCCC"));
  r.ingest(make_packet(t, 6, "DD"));
  r.ingest(make_packet(t, 1, "f"));
  return util::to_string(c.stream);
}

TEST(ReassemblyPolicy, FirstBufferedBytesWin) {
  EXPECT_EQ(policy_stream(OverlapPolicy::first), "xfCCAAAA");
}

TEST(ReassemblyPolicy, LastNewSegmentWins) {
  EXPECT_EQ(policy_stream(OverlapPolicy::last), "xfCCCCDD");
}

TEST(ReassemblyPolicy, TargetBsdEarlierStartWins) {
  EXPECT_EQ(policy_stream(OverlapPolicy::target_bsd), "xfCCCCAA");
}

TEST(ReassemblyPolicy, TargetLinuxTiesGoToNewSegment) {
  EXPECT_EQ(policy_stream(OverlapPolicy::target_linux), "xfCCCCBB");
}

TEST(ReassemblyPolicy, DeliveredPrefixIsAlwaysFirstWins) {
  // Bytes already handed to the consumer can never be retracted, so even the
  // most aggressive policy discards data overlapping the delivered prefix.
  for (const auto p : {OverlapPolicy::first, OverlapPolicy::last,
                       OverlapPolicy::target_bsd, OverlapPolicy::target_linux}) {
    ReassemblyConfig cfg;
    cfg.overlap = p;
    Collected c;
    TcpReassembler r(collector(c), cfg);
    const auto t = tuple_a();
    r.ingest(make_packet(t, 0, "original"));
    r.ingest(make_packet(t, 0, "OVERRIDE"));
    EXPECT_EQ(util::to_string(c.stream), "original") << overlap_policy_name(p);
  }
}

TEST(ReassemblyPolicy, NamesRoundTrip) {
  for (const auto p : {OverlapPolicy::first, OverlapPolicy::last,
                       OverlapPolicy::target_bsd, OverlapPolicy::target_linux}) {
    const auto parsed = overlap_policy_from_name(overlap_policy_name(p));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, p);
  }
  EXPECT_FALSE(overlap_policy_from_name("nope").has_value());
}

TEST(Reassembly, DataPastFinIsTrimmed) {
  Collected c;
  TcpReassembler r(collector(c));
  const auto t = tuple_a();
  r.ingest(make_packet(t, 100, "real"));
  r.ingest(make_packet(t, 104, "", 0, kTcpFin | kTcpAck));  // FIN at offset 4
  r.ingest(make_packet(t, 104, "EVIL"));  // past the FIN: never reaches the endpoint
  EXPECT_EQ(util::to_string(c.stream), "real");
  EXPECT_EQ(r.stats().fins, 1u);
}

TEST(Reassembly, FinTruncatesBufferedDataBeyondIt) {
  Collected c;
  TcpReassembler r(collector(c));
  const auto t = tuple_a();
  r.ingest(make_packet(t, 0, "ab"));
  r.ingest(make_packet(t, 10, "WXYZ"));           // buffered past the coming FIN
  r.ingest(make_packet(t, 6, "", 0, kTcpFin));    // FIN at offset 6
  r.ingest(make_packet(t, 2, "cdef"));
  EXPECT_EQ(util::to_string(c.stream), "abcdef");
}

TEST(Reassembly, LifecycleCallbacksAndRstTeardown) {
  std::size_t starts = 0;
  std::vector<std::pair<FiveTuple, EndReason>> ends;
  TcpReassembler r([](const StreamChunk&) {});
  r.on_connection_start([&](const FiveTuple&) { ++starts; });
  r.on_connection_end(
      [&](const FiveTuple& client, EndReason why) { ends.emplace_back(client, why); });
  const auto t = tuple_a();
  r.ingest(make_packet(t, 0, "", 0, kTcpSyn));
  r.ingest(make_packet(t, 1, "data"));
  r.ingest(make_packet(t, 999, "", 0, kTcpRst));
  EXPECT_EQ(starts, 1u);
  ASSERT_EQ(ends.size(), 1u);
  EXPECT_EQ(ends[0].first, t) << "end callback reports the client-side tuple";
  EXPECT_EQ(ends[0].second, EndReason::rst);
  EXPECT_EQ(r.active_flows(), 0u);
  EXPECT_EQ(r.stats().resets, 1u);
  EXPECT_EQ(r.stats().connections_ended, 1u);
}

TEST(Reassembly, BidirectionalFinHandshakeEndsConnection) {
  std::vector<EndReason> ends;
  util::Bytes c2s, s2c;
  TcpReassembler r([&](const StreamChunk& ch) {
    EXPECT_EQ(ch.server_port, 80) << "both directions classify by the server port";
    auto& s = ch.dir == Direction::client_to_server ? c2s : s2c;
    EXPECT_EQ(ch.offset, s.size());
    s.insert(s.end(), ch.data.begin(), ch.data.end());
  });
  r.on_connection_end([&](const FiveTuple&, EndReason why) { ends.push_back(why); });
  const auto t = tuple_a();
  const auto rt = t.reversed();
  r.ingest(make_packet(t, 100, "", 0, kTcpSyn));
  r.ingest(make_packet(rt, 500, "", 0, kTcpSyn | kTcpAck));
  EXPECT_EQ(r.active_flows(), 1u) << "both directions are ONE connection";
  r.ingest(make_packet(t, 101, "request"));
  r.ingest(make_packet(rt, 501, "response!"));
  r.ingest(make_packet(t, 108, "", 0, kTcpFin | kTcpAck));
  EXPECT_TRUE(ends.empty()) << "half-closed: the server side is still open";
  r.ingest(make_packet(rt, 510, "", 0, kTcpFin | kTcpAck));
  ASSERT_EQ(ends.size(), 1u);
  EXPECT_EQ(ends[0], EndReason::fin);
  EXPECT_EQ(util::to_string(c2s), "request");
  EXPECT_EQ(util::to_string(s2c), "response!");
  EXPECT_EQ(r.active_flows(), 0u);
  EXPECT_EQ(r.stats().side[0].delivered_bytes, 7u);
  EXPECT_EQ(r.stats().side[1].delivered_bytes, 9u);
}

TEST(Reassembly, BidirectionalOutOfOrderSidesAreIndependent) {
  util::Bytes c2s, s2c;
  TcpReassembler r([&](const StreamChunk& ch) {
    auto& s = ch.dir == Direction::client_to_server ? c2s : s2c;
    EXPECT_EQ(ch.offset, s.size());
    s.insert(s.end(), ch.data.begin(), ch.data.end());
  });
  const auto t = tuple_a();
  const auto rt = t.reversed();
  r.ingest(make_packet(t, 0, "AB"));     // first sender pins as the client
  r.ingest(make_packet(rt, 100, "xy"));
  r.ingest(make_packet(t, 4, "EF"));     // client-side hole
  r.ingest(make_packet(rt, 103, "w"));   // server-side hole
  r.ingest(make_packet(t, 2, "CD"));
  r.ingest(make_packet(rt, 102, "z"));
  EXPECT_EQ(util::to_string(c2s), "ABCDEF");
  EXPECT_EQ(util::to_string(s2c), "xyzw");
  EXPECT_EQ(r.active_flows(), 1u);
  EXPECT_EQ(r.stats().side[0].segments, 3u);
  EXPECT_EQ(r.stats().side[1].segments, 3u);
}

TEST(Reassembly, CloseCountsDiscardedPendingBytes) {
  TcpReassembler r([](const StreamChunk&) {});
  const auto t = tuple_a();
  r.ingest(make_packet(t, 0, "a"));
  r.ingest(make_packet(t, 10, "pending!"));  // 8 bytes buffered behind a hole
  r.close_flow(t.reversed());  // either direction's tuple closes the connection
  EXPECT_EQ(r.stats().discarded_on_close_bytes, 8u);
  EXPECT_EQ(r.active_flows(), 0u);
  EXPECT_EQ(r.stats().connections_ended, 1u);
}

// ---- flowgen --------------------------------------------------------------------

TEST(FlowGen, ReassemblesBackToOriginalStreams) {
  FlowGenConfig cfg;
  cfg.flow_count = 3;
  cfg.bytes_per_flow = 40000;
  cfg.seed = 5;
  const auto flows = generate_flows(cfg);
  ASSERT_EQ(flows.streams.size(), 3u);

  std::unordered_map<std::uint64_t, util::Bytes> rebuilt;
  TcpReassembler r([&](const StreamChunk& chunk) {
    auto& s = rebuilt[chunk.tuple.hash()];
    s.insert(s.end(), chunk.data.begin(), chunk.data.end());
  });
  for (const Packet& p : flows.packets) r.ingest(p);
  for (std::size_t f = 0; f < flows.streams.size(); ++f) {
    EXPECT_EQ(rebuilt[flows.tuples[f].hash()], flows.streams[f]) << "flow " << f;
  }
}

TEST(FlowGen, ReorderingStillReassembles) {
  FlowGenConfig cfg;
  cfg.flow_count = 2;
  cfg.bytes_per_flow = 30000;
  cfg.reorder_fraction = 0.4;
  cfg.seed = 6;
  const auto flows = generate_flows(cfg);
  std::unordered_map<std::uint64_t, util::Bytes> rebuilt;
  TcpReassembler r([&](const StreamChunk& chunk) {
    auto& s = rebuilt[chunk.tuple.hash()];
    s.insert(s.end(), chunk.data.begin(), chunk.data.end());
  });
  for (const Packet& p : flows.packets) r.ingest(p);
  for (std::size_t f = 0; f < flows.streams.size(); ++f) {
    EXPECT_EQ(rebuilt[flows.tuples[f].hash()], flows.streams[f]) << "flow " << f;
  }
}

// The adversarial corpus must reassemble to the exact ground-truth streams
// on BOTH sides under every overlap policy: at reorder_fraction=0 the
// conflicting retransmits always trail the genuine bytes, so they hit the
// delivered prefix — which is first-wins regardless of policy.
TEST(FlowGen, EvasionCorpusReassemblesToGroundTruthUnderEveryPolicy) {
  FlowGenConfig cfg;
  cfg.flow_count = 5;
  cfg.bytes_per_flow = 20000;
  cfg.seed = 9;
  cfg.evasion = true;
  const auto flows = generate_flows(cfg);
  ASSERT_EQ(flows.reverse_streams.size(), 5u);

  for (const auto policy : {OverlapPolicy::first, OverlapPolicy::last,
                            OverlapPolicy::target_bsd, OverlapPolicy::target_linux}) {
    ReassemblyConfig rcfg;
    rcfg.overlap = policy;
    std::unordered_map<std::uint64_t, util::Bytes> rebuilt;
    TcpReassembler r(
        [&](const StreamChunk& chunk) {
          auto& s = rebuilt[chunk.tuple.hash()];
          EXPECT_EQ(chunk.offset, s.size());
          s.insert(s.end(), chunk.data.begin(), chunk.data.end());
        },
        rcfg);
    for (const Packet& p : flows.packets) r.ingest(p);
    for (std::size_t f = 0; f < flows.streams.size(); ++f) {
      EXPECT_EQ(rebuilt[flows.tuples[f].hash()], flows.streams[f])
          << "c2s flow " << f << " policy " << overlap_policy_name(policy);
      EXPECT_EQ(rebuilt[flows.tuples[f].reversed().hash()], flows.reverse_streams[f])
          << "s2c flow " << f << " policy " << overlap_policy_name(policy);
    }
    EXPECT_GT(r.stats().overlap_bytes_trimmed(), 0u)
        << "conflicting retransmits and probes must have been discarded";
    EXPECT_GT(r.stats().fins, 0u);
    EXPECT_GT(r.stats().resets, 0u);
    EXPECT_EQ(r.dropped_segments(), 0u);
    EXPECT_EQ(r.active_flows(), 0u)
        << "every connection was torn down by FIN or RST";
  }
}

TEST(FlowGen, EvasionCorpusSurvivesReorderingDeterministically) {
  // With reordering the policy outcome is data-dependent; what must hold is
  // that the same corpus under the same policy always yields the same bytes.
  FlowGenConfig cfg;
  cfg.flow_count = 3;
  cfg.bytes_per_flow = 15000;
  cfg.reorder_fraction = 0.3;
  cfg.seed = 12;
  cfg.evasion = true;
  const auto flows = generate_flows(cfg);
  auto run = [&] {
    std::map<std::uint64_t, util::Bytes> rebuilt;
    ReassemblyConfig rcfg;
    rcfg.overlap = OverlapPolicy::target_linux;
    TcpReassembler r(
        [&](const StreamChunk& chunk) {
          auto& s = rebuilt[chunk.tuple.hash()];
          s.insert(s.end(), chunk.data.begin(), chunk.data.end());
        },
        rcfg);
    for (const Packet& p : flows.packets) r.ingest(p);
    return rebuilt;
  };
  EXPECT_EQ(run(), run());
}

TEST(FlowGen, Deterministic) {
  FlowGenConfig cfg;
  cfg.flow_count = 2;
  cfg.bytes_per_flow = 10000;
  cfg.seed = 7;
  const auto a = generate_flows(cfg);
  const auto b = generate_flows(cfg);
  ASSERT_EQ(a.packets.size(), b.packets.size());
  for (std::size_t i = 0; i < a.packets.size(); ++i) {
    EXPECT_EQ(a.packets[i].payload, b.packets[i].payload) << i;
  }
}

TEST(FlowGen, SegmentSizesRespectMss) {
  FlowGenConfig cfg;
  cfg.flow_count = 1;
  cfg.bytes_per_flow = 50000;
  cfg.mss = 512;
  cfg.seed = 8;
  for (const Packet& p : generate_flows(cfg).packets) {
    EXPECT_LE(p.payload.size(), 512u);
    EXPECT_GT(p.payload.size(), 0u);
  }
}

}  // namespace
}  // namespace vpm::net

namespace vpm::ids {
namespace {

TEST(PcapPipeline, ClassifyPorts) {
  EXPECT_EQ(classify_port(80), pattern::Group::http);
  EXPECT_EQ(classify_port(8080), pattern::Group::http);
  EXPECT_EQ(classify_port(53), pattern::Group::dns);
  EXPECT_EQ(classify_port(21), pattern::Group::ftp);
  EXPECT_EQ(classify_port(25), pattern::Group::smtp);
  EXPECT_EQ(classify_port(12345), pattern::Group::generic);
}

TEST(PcapPipeline, EndToEndMatchesDirectScan) {
  // Generate flows, plant a pattern, write pcap (with reordering), run the
  // pipeline; alerts must equal a direct scan of each reassembled stream.
  net::FlowGenConfig fcfg;
  fcfg.flow_count = 3;
  fcfg.bytes_per_flow = 60000;
  fcfg.reorder_fraction = 0.3;
  fcfg.seed = 11;
  auto flows = net::generate_flows(fcfg);

  pattern::PatternSet rules;
  rules.add("PLANTED-IN-FLOW", false, pattern::Group::http);
  rules.add("GET /", false, pattern::Group::http);
  // Plant the marker into flow 1's stream, then re-segment all flows from
  // the patched streams (fixed 1000-byte segments, in order).
  net::GeneratedFlows repacked = std::move(flows);
  std::copy_n("PLANTED-IN-FLOW", 15, repacked.streams[1].begin() + 1234);
  std::vector<net::Packet> packets;
  for (std::size_t f = 0; f < repacked.streams.size(); ++f) {
    const auto& s = repacked.streams[f];
    for (std::size_t off = 0; off < s.size(); off += 1000) {
      net::Packet p;
      p.tuple = repacked.tuples[f];
      p.tcp_seq = static_cast<std::uint32_t>(off);
      const std::size_t len = std::min<std::size_t>(1000, s.size() - off);
      p.payload.assign(s.begin() + static_cast<long>(off),
                       s.begin() + static_cast<long>(off + len));
      packets.push_back(std::move(p));
    }
  }

  const auto pcap = net::write_pcap(packets);
  const auto result = inspect_pcap(pcap, rules, {core::Algorithm::vpatch});
  EXPECT_EQ(result.skipped_records, 0u);
  EXPECT_EQ(result.reassembly_drops, 0u);

  // Ground truth: scan each stream directly with the http-group matcher.
  const GroupedRules grouped(rules, core::Algorithm::vpatch);
  std::size_t expected = 0;
  for (const auto& s : repacked.streams) {
    expected += grouped.matcher_for(pattern::Group::http).count_matches(s);
  }
  EXPECT_EQ(result.alerts.size(), expected);
  // The planted marker must be among the alerts.
  bool planted_found = false;
  for (const Alert& a : result.alerts) {
    if (a.pattern_id == 0) planted_found = true;
  }
  EXPECT_TRUE(planted_found);
}

TEST(PcapPipeline, UdpPayloadsScannedPerDatagram) {
  pattern::PatternSet rules;
  rules.add("dns-marker", false, pattern::Group::dns);
  net::Packet p;
  p.tuple.src_ip = 1;
  p.tuple.dst_ip = 2;
  p.tuple.src_port = 5353;
  p.tuple.dst_port = 53;
  p.tuple.proto = net::IpProto::udp;
  p.payload = util::to_bytes("xx dns-marker yy");
  const auto result = inspect_pcap(net::write_pcap({p}), rules, {core::Algorithm::spatch});
  ASSERT_EQ(result.alerts.size(), 1u);
  EXPECT_EQ(result.alerts[0].group, pattern::Group::dns);
}

}  // namespace
}  // namespace vpm::ids
