// Tail/boundary read-contract regression tests for the simd window
// primitives (and the engines' end-of-buffer handling built on them).
//
// ops.hpp documents deliberate over-reads:
//   windows2_scalar reads p[0..w]      (w+1 bytes)
//   windows4_scalar reads p[0..w+2]    (w+3 bytes)
//   AVX2 wrappers   read 16 bytes at p (W=8)
//   AVX-512 wrappers read 32 bytes at p (W=16)
// Every case below hands the kernel a heap buffer of *exactly* the
// documented extent, so AddressSanitizer (the Debug+ASan CI job) flags any
// read past the contract, and value checks pin the window semantics at the
// same time.  If a kernel change widens its loads, these tests fail before
// the over-read ships.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <tuple>
#include <vector>

#include "ac/ac_compact.hpp"
#include "core/matcher_factory.hpp"
#include "helpers.hpp"
#include "simd/cpu_features.hpp"
#include "simd/ops.hpp"

namespace vpm {
namespace {

// Exactly `n` addressable bytes on the heap with a deterministic fill;
// byte i is distinct from byte i+1 so window mistakes change values.
std::vector<std::uint8_t> exact_buffer(std::size_t n) {
  std::vector<std::uint8_t> buf(n);
  for (std::size_t i = 0; i < n; ++i) {
    buf[i] = static_cast<std::uint8_t>(0x11 * (i + 1) ^ (i >> 3));
  }
  return buf;
}

TEST(SimdTail, Windows2ScalarReadsExactlyWPlus1Bytes) {
  for (unsigned w = 1; w <= 32; ++w) {
    const auto buf = exact_buffer(w + 1);  // contract: reads p[0..w]
    std::vector<std::uint32_t> out(w, 0xdeadbeef);
    simd::windows2_scalar(buf.data(), out.data(), w);
    for (unsigned j = 0; j < w; ++j) {
      const std::uint32_t expect =
          static_cast<std::uint32_t>(buf[j]) | static_cast<std::uint32_t>(buf[j + 1]) << 8;
      EXPECT_EQ(out[j], expect) << "w=" << w << " lane " << j;
    }
  }
}

TEST(SimdTail, Windows4ScalarReadsExactlyWPlus3Bytes) {
  for (unsigned w = 1; w <= 32; ++w) {
    const auto buf = exact_buffer(w + 3);  // contract: reads p[0..w+2]
    std::vector<std::uint32_t> out(w, 0xdeadbeef);
    simd::windows4_scalar(buf.data(), out.data(), w);
    for (unsigned j = 0; j < w; ++j) {
      const std::uint32_t expect = static_cast<std::uint32_t>(buf[j]) |
                                   static_cast<std::uint32_t>(buf[j + 1]) << 8 |
                                   static_cast<std::uint32_t>(buf[j + 2]) << 16 |
                                   static_cast<std::uint32_t>(buf[j + 3]) << 24;
      EXPECT_EQ(out[j], expect) << "w=" << w << " lane " << j;
    }
  }
}

TEST(SimdTail, GatherScalarReadsFourBytesPerIndex) {
  // Highest byte offset is 12 -> base must stay addressable through byte 15.
  const std::vector<std::uint32_t> idx = {0, 3, 7, 12, 1, 5, 9, 11};
  const auto base = exact_buffer(12 + 4);
  std::vector<std::uint32_t> out(idx.size(), 0);
  simd::gather_u32_scalar(base.data(), idx.data(), out.data(),
                          static_cast<unsigned>(idx.size()));
  for (std::size_t j = 0; j < idx.size(); ++j) {
    std::uint32_t expect = 0;
    for (int b = 3; b >= 0; --b) expect = expect << 8 | base[idx[j] + b];
    EXPECT_EQ(out[j], expect) << "lane " << j;
  }
}

TEST(SimdTail, Avx2WindowsReadExactlySixteenBytes) {
  if (!simd::avx2_available()) GTEST_SKIP() << "AVX2 kernel not available";
  const auto buf = exact_buffer(16);  // contract: one 16-byte load at p
  std::uint32_t v2[8], v4[8], r2[8], r4[8];
  simd::windows2_avx2(buf.data(), v2);
  simd::windows4_avx2(buf.data(), v4);
  simd::windows2_scalar(buf.data(), r2, 8);
  simd::windows4_scalar(buf.data(), r4, 8);
  for (unsigned j = 0; j < 8; ++j) {
    EXPECT_EQ(v2[j], r2[j]) << "windows2 lane " << j;
    EXPECT_EQ(v4[j], r4[j]) << "windows4 lane " << j;
  }
}

TEST(SimdTail, Avx2GatherReadsFourBytesPerIndex) {
  if (!simd::avx2_available()) GTEST_SKIP() << "AVX2 kernel not available";
  const std::uint32_t idx[8] = {4, 0, 9, 2, 12, 7, 1, 10};
  const auto base = exact_buffer(12 + 4);
  std::uint32_t out[8], ref[8];
  simd::gather_u32_avx2(base.data(), idx, out);
  simd::gather_u32_scalar(base.data(), idx, ref, 8);
  for (unsigned j = 0; j < 8; ++j) EXPECT_EQ(out[j], ref[j]) << "lane " << j;
}

TEST(SimdTail, Avx512WindowsReadExactlyThirtyTwoBytes) {
  if (!simd::avx512_available()) GTEST_SKIP() << "AVX-512 kernel not available";
  const auto buf = exact_buffer(32);  // contract: one 32-byte load at p
  std::uint32_t v2[16], v4[16], r2[16], r4[16];
  simd::windows2_avx512(buf.data(), v2);
  simd::windows4_avx512(buf.data(), v4);
  simd::windows2_scalar(buf.data(), r2, 16);
  simd::windows4_scalar(buf.data(), r4, 16);
  for (unsigned j = 0; j < 16; ++j) {
    EXPECT_EQ(v2[j], r2[j]) << "windows2 lane " << j;
    EXPECT_EQ(v4[j], r4[j]) << "windows4 lane " << j;
  }
}

TEST(SimdTail, Avx512GatherReadsFourBytesPerIndex) {
  if (!simd::avx512_available()) GTEST_SKIP() << "AVX-512 kernel not available";
  std::uint32_t idx[16];
  for (unsigned j = 0; j < 16; ++j) idx[j] = (j * 7) % 13;
  const auto base = exact_buffer(12 + 4);
  std::uint32_t out[16], ref[16];
  simd::gather_u32_avx512(base.data(), idx, out);
  simd::gather_u32_scalar(base.data(), idx, ref, 16);
  for (unsigned j = 0; j < 16; ++j) EXPECT_EQ(out[j], ref[j]) << "lane " << j;
}

// End-to-end tail handling: a pattern ending on the very last byte of an
// exactly-sized heap buffer must be reported by every available engine, and
// (under ASan) scanning must not read past the buffer.
TEST(SimdTail, EveryEngineMatchesAtExactBufferEnd) {
  const auto set = testutil::boundary_set();
  for (const std::size_t n : std::vector<std::size_t>{5, 16, 17, 31, 32, 33, 64, 1000}) {
    auto buf = exact_buffer(n);
    // Terminate the buffer with "abcde" (or a prefix that fits).
    const char* needle = "abcde";
    const std::size_t k = std::min<std::size_t>(5, n);
    std::copy(needle, needle + k, buf.end() - static_cast<std::ptrdiff_t>(k));
    const util::ByteView view(buf.data(), buf.size());
    for (const auto algo : core::available_algorithms()) {
      const auto m = core::make_matcher(algo, set);
      testutil::expect_matches_naive(*m, set, view,
                                     "tail n=" + std::to_string(n));
    }
  }
}

// The AC lane kernel's read contract (ac_lanes.hpp): input bytes are
// fetched 4 at a time, but only from the STAGED copy — never from the
// caller's payload buffers.  Exact-extent heap payloads driven through
// scan_batch (under ASan in CI) trip any kernel change that starts reading
// user memory wide; the value check pins batch/scan equality at the same
// time.
TEST(SimdTail, AcLaneKernelNeverReadsPastCallerPayloads) {
  const auto set = testutil::boundary_set();
  const ac::AcCompactMatcher compact(set);

  std::vector<std::vector<std::uint8_t>> buffers;
  for (const std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{3}, std::size_t{5},
                              std::size_t{13}, std::size_t{64}, std::size_t{129}}) {
    auto buf = exact_buffer(n);
    const char* needle = "abcde";
    const std::size_t k = std::min<std::size_t>(5, n);
    std::copy(needle, needle + k, buf.end() - static_cast<std::ptrdiff_t>(k));
    buffers.push_back(std::move(buf));
  }
  std::vector<util::ByteView> views;
  for (const auto& b : buffers) views.emplace_back(b.data(), b.size());

  struct Sink final : BatchSink {
    std::vector<std::tuple<std::uint32_t, std::uint32_t, std::uint64_t>> out;
    void on_match(std::uint32_t packet, const Match& m) override {
      out.emplace_back(packet, m.pattern_id, m.pos);
    }
  } sink;
  ScanScratch scratch;
  compact.scan_batch({views.data(), views.size()}, sink, scratch);
  std::sort(sink.out.begin(), sink.out.end());

  std::vector<std::tuple<std::uint32_t, std::uint32_t, std::uint64_t>> expected;
  for (std::size_t i = 0; i < views.size(); ++i) {
    for (const Match& m : compact.find_matches(views[i])) {
      expected.emplace_back(static_cast<std::uint32_t>(i), m.pattern_id, m.pos);
    }
  }
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(sink.out, expected);
}

}  // namespace
}  // namespace vpm
