// DFC substrate tests: direct filters, compact tables, scalar DFC and
// Vector-DFC end-to-end behaviour.
#include <gtest/gtest.h>

#include "dfc/compact_table.hpp"
#include "dfc/dfc.hpp"
#include "dfc/direct_filter.hpp"
#include "dfc/vector_dfc.hpp"
#include "helpers.hpp"
#include "simd/cpu_features.hpp"
#include "util/hash.hpp"

namespace vpm::dfc {
namespace {

using testutil::expect_matches_naive;

pattern::Pattern make_pattern(std::string_view text, bool nocase = false) {
  pattern::Pattern p;
  p.bytes = util::to_bytes(text);
  p.nocase = nocase;
  return p;
}

// ---- DirectFilter2B -----------------------------------------------------

TEST(DirectFilter2B, SetsExactPrefixBit) {
  DirectFilter2B f;
  f.add_pattern_prefix(make_pattern("GET"));
  EXPECT_TRUE(f.test(util::load_u16(util::to_bytes("GE").data())));
  EXPECT_FALSE(f.test(util::load_u16(util::to_bytes("ge").data())));
  EXPECT_FALSE(f.test(util::load_u16(util::to_bytes("GX").data())));
}

TEST(DirectFilter2B, NocaseSetsAllCaseVariants) {
  DirectFilter2B f;
  f.add_pattern_prefix(make_pattern("ab", true));
  for (const char* v : {"ab", "Ab", "aB", "AB"}) {
    EXPECT_TRUE(f.test(util::load_u16(util::to_bytes(v).data()))) << v;
  }
  EXPECT_FALSE(f.test(util::load_u16(util::to_bytes("ac").data())));
}

TEST(DirectFilter2B, OneBytePatternWildcardsSecondByte) {
  DirectFilter2B f;
  f.add_pattern_prefix(make_pattern("Q"));
  for (unsigned second = 0; second < 256; ++second) {
    EXPECT_TRUE(f.test('Q' | (second << 8))) << second;
  }
  EXPECT_FALSE(f.test('R' | (0u << 8)));
}

TEST(DirectFilter2B, OccupancyReflectsInsertions) {
  DirectFilter2B f;
  EXPECT_DOUBLE_EQ(f.occupancy(), 0.0);
  f.add_pattern_prefix(make_pattern("xy"));
  EXPECT_NEAR(f.occupancy(), 1.0 / 65536, 1e-9);
}

// ---- HashedFilter4B --------------------------------------------------------

TEST(HashedFilter4B, AcceptsItsOwnPrefix) {
  HashedFilter4B f(16);
  f.add_pattern_prefix(make_pattern("EVIL-PATTERN"));
  EXPECT_TRUE(f.test(util::load_u32(util::to_bytes("EVIL").data())));
}

TEST(HashedFilter4B, NocaseVariantsAllPass) {
  HashedFilter4B f(16);
  f.add_pattern_prefix(make_pattern("evil-stuff", true));
  for (const char* v : {"evil", "EVIL", "eViL", "Evil"}) {
    EXPECT_TRUE(f.test(util::load_u32(util::to_bytes(v).data()))) << v;
  }
}

TEST(HashedFilter4B, MostForeignPrefixesRejected) {
  HashedFilter4B f(16);
  f.add_pattern_prefix(make_pattern("ABCDEFGH"));
  util::Rng rng(1);
  int false_positives = 0;
  for (int i = 0; i < 10000; ++i) {
    if (f.test(static_cast<std::uint32_t>(rng()))) ++false_positives;
  }
  // One bit set out of 2^16: expected fp rate ~1/65536.
  EXPECT_LT(false_positives, 10);
}

TEST(HashedFilter4B, SmallerFilterHasMoreCollisions) {
  HashedFilter4B big(16), small(8);
  const auto set = testutil::random_set(300, 12, testutil::case_seed(9), 26);
  for (const auto& p : set) {
    if (p.size() >= 4) {
      big.add_pattern_prefix(p);
      small.add_pattern_prefix(p);
    }
  }
  EXPECT_GT(small.occupancy(), big.occupancy()) << testutil::seed_note();
}

// ---- compact tables ---------------------------------------------------------

TEST(ShortTable, VerifiesOnlyShortFamily) {
  pattern::PatternSet set;
  set.add("ab");
  set.add("abcdef");  // long family: not in the short table
  const ShortTable table(set);
  EXPECT_EQ(table.pattern_count(), 1u);
  CollectingSink sink;
  const auto data = util::to_bytes("abcdef");
  table.verify_at(data, 0, sink);
  ASSERT_EQ(sink.matches().size(), 1u);
  EXPECT_EQ(sink.matches()[0].pattern_id, 0u);
}

TEST(ShortTable, ReportsAllLengthsAtSamePosition) {
  pattern::PatternSet set;
  set.add("a");
  set.add("ab");
  set.add("abc");
  const ShortTable table(set);
  CollectingSink sink;
  const auto data = util::to_bytes("abcd");
  table.verify_at(data, 0, sink);
  EXPECT_EQ(sink.matches().size(), 3u);
}

TEST(ShortTable, RespectsBufferEnd) {
  pattern::PatternSet set;
  set.add("ab");
  set.add("a");
  const ShortTable table(set);
  CollectingSink sink;
  const auto data = util::to_bytes("za");
  table.verify_at(data, 1, sink);  // only "a" fits
  ASSERT_EQ(sink.matches().size(), 1u);
  EXPECT_EQ(sink.matches()[0].pattern_id, 1u);
}

TEST(ShortTable, NocaseReportedOncePerPosition) {
  pattern::PatternSet set;
  set.add("ab", true);
  const ShortTable table(set);
  for (const char* text : {"ab", "Ab", "aB", "AB"}) {
    CollectingSink sink;
    const auto data = util::to_bytes(text);
    table.verify_at(data, 0, sink);
    EXPECT_EQ(sink.matches().size(), 1u) << text;
  }
}

TEST(LongTable, ExactPrefixRejectsNeighbors) {
  pattern::PatternSet set;
  set.add("attack-vector");
  set.add("attribute=1");
  const LongTable table(set);
  CollectingSink sink;
  const auto data = util::to_bytes("attack-vector attribute=1");
  table.verify_at(data, 0, sink);
  ASSERT_EQ(sink.matches().size(), 1u);
  EXPECT_EQ(sink.matches()[0].pattern_id, 0u);
  table.verify_at(data, 14, sink);
  EXPECT_EQ(sink.matches().size(), 2u);
}

TEST(LongTable, NocaseEntriesFindAllCasings) {
  pattern::PatternSet set;
  set.add("select", true);
  const LongTable table(set);
  for (const char* text : {"select", "SELECT", "SeLeCt"}) {
    CollectingSink sink;
    const auto data = util::to_bytes(text);
    table.verify_at(data, 0, sink);
    EXPECT_EQ(sink.matches().size(), 1u) << text;
  }
}

TEST(LongTable, PositionNearEndIsSafe) {
  pattern::PatternSet set;
  set.add("abcd");
  const LongTable table(set);
  CollectingSink sink;
  const auto data = util::to_bytes("xabc");
  table.verify_at(data, 1, sink);  // only 3 bytes remain
  EXPECT_TRUE(sink.matches().empty());
  table.verify_at(data, 4, sink);  // out of range entirely
  EXPECT_TRUE(sink.matches().empty());
}

TEST(LongTable, DuplicatePrefixesShareBucket) {
  pattern::PatternSet set;
  set.add("prefix-one");
  set.add("prefix-two");
  set.add("prefix-three");
  const LongTable table(set);
  CollectingSink sink;
  const auto data = util::to_bytes("prefix-three");
  table.verify_at(data, 0, sink);
  ASSERT_EQ(sink.matches().size(), 1u);
  EXPECT_EQ(sink.matches()[0].pattern_id, 2u);
}

TEST(LongTable, MeanBucketOccupancyReasonable) {
  const auto set = testutil::random_set(2000, 16, testutil::case_seed(10), 26);
  const LongTable table(set, 15);
  EXPECT_LT(table.mean_bucket_entries(), 4.0) << testutil::seed_note();
}

// ---- DFC end-to-end -----------------------------------------------------------

TEST(Dfc, BoundarySetAgainstOracle) {
  const auto set = testutil::boundary_set();
  const DfcMatcher m(set);
  expect_matches_naive(m, set, util::as_view("xabcdex GET http/1.1"));
  expect_matches_naive(m, set, testutil::random_text(4000, testutil::case_seed(77)));
}

TEST(Dfc, RandomizedDifferential) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const auto set = testutil::random_set(60, 8, testutil::case_seed(seed));
    const DfcMatcher m(set);
    const auto text = testutil::random_text(3000, testutil::case_seed(seed + 50));
    expect_matches_naive(m, set, text, "seed=" + std::to_string(seed));
  }
}

TEST(Dfc, EmptyInput) {
  const auto set = testutil::boundary_set();
  const DfcMatcher m(set);
  EXPECT_EQ(m.count_matches({}), 0u);
}

TEST(Dfc, SingleByteInput) {
  pattern::PatternSet set;
  set.add("a");
  set.add("ab");
  const DfcMatcher m(set);
  EXPECT_EQ(m.count_matches(util::as_view("a")), 1u);
  EXPECT_EQ(m.count_matches(util::as_view("b")), 0u);
}

TEST(Dfc, MatchAtLastPosition) {
  pattern::PatternSet set;
  set.add("x");
  const DfcMatcher m(set);
  EXPECT_EQ(m.count_matches(util::as_view("aaax")), 1u);
}

TEST(Dfc, FilterMemoryIsCacheSized) {
  const auto set = testutil::random_set(1000, 12, testutil::case_seed(11), 26);
  const DfcMatcher m(set);
  // Three 8 KB direct filters + tables; the filters alone must stay tiny.
  EXPECT_EQ(3 * DirectFilter2B::kBits / 8, 3u * 8192u);
  EXPECT_GT(m.memory_bytes(), 3u * 8192u);
}

// ---- Vector-DFC ------------------------------------------------------------------

class VectorDfc : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!simd::cpu().has_avx2_kernel()) GTEST_SKIP() << "AVX2 not available";
  }
};

TEST_F(VectorDfc, AgreesWithScalarDfcOnRandomText) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const auto set = testutil::random_set(60, 8, testutil::case_seed(seed));
    const DfcMatcher scalar(set);
    const VectorDfcMatcher vec(set);
    const auto text = testutil::random_text(5000, testutil::case_seed(seed + 10));
    EXPECT_EQ(vec.find_matches(text), scalar.find_matches(text))
        << "seed " << seed << " (" << testutil::seed_note() << ")";
  }
}

TEST_F(VectorDfc, BoundarySetAgainstOracle) {
  const auto set = testutil::boundary_set();
  const VectorDfcMatcher m(set);
  expect_matches_naive(m, set, util::as_view("abcde GET xyz"));
}

TEST_F(VectorDfc, AllInputLengthsNearVectorBoundary) {
  // Sweep lengths 0..48 to cover scalar-tail vs vector-loop transitions.
  pattern::PatternSet set;
  set.add("ab");
  set.add("a");
  set.add("bcde");
  const VectorDfcMatcher m(set);
  for (std::size_t len = 0; len <= 48; ++len) {
    const auto text = testutil::random_text(len, testutil::case_seed(len * 31 + 7), 5);
    expect_matches_naive(m, set, text, "len=" + std::to_string(len));
  }
}

}  // namespace
}  // namespace vpm::dfc
