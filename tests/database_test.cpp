// The compile/runtime API split: vpm::Database owns its pattern copy (the
// source PatternSet may die the moment compile() returns — the lifetime test
// below runs under ASan in CI), vpm::Scanner is the per-thread session, and
// the v2 serialized form round-trips the fingerprint + algorithm hint.
#include <gtest/gtest.h>

#include <memory>
#include <thread>

#include "core/database.hpp"
#include "helpers.hpp"
#include "pattern/serialize.hpp"

namespace vpm {
namespace {

using core::Algorithm;

pattern::PatternSet small_set() {
  pattern::PatternSet set;
  set.add("he");
  set.add("she", true);
  set.add("/etc/passwd");
  set.add("HTTP/1.1", true, pattern::Group::http);
  return set;
}

// The lifetime contract the redesign exists for: the Database must scan
// correctly after the set it was compiled from is gone.  Heap-allocating the
// source set and freeing it before the scan makes a retained reference an
// ASan use-after-free, not just flaky reads.
TEST(Database, CompiledDatabaseOutlivesSourceSet) {
  for (const Algorithm algo : core::available_algorithms()) {
    DatabasePtr db;
    {
      auto doomed = std::make_unique<pattern::PatternSet>(testutil::boundary_set());
      db = compile(algo, *doomed);
    }  // source set destroyed here
    const auto survivors = testutil::boundary_set();  // oracle needs live patterns
    testutil::expect_matches_naive(db->engine(), survivors,
                                   util::as_view("xxabcdexx GET http/1.1 a"),
                                   std::string("post-free [") +
                                       std::string(core::algorithm_name(algo)) + "]");
    EXPECT_EQ(db->pattern_count(), survivors.size());
    EXPECT_EQ(db->algorithm(), algo);
  }
}

TEST(Database, ScannerEqualsDirectEngineAndIsPerThread) {
  const auto set = testutil::random_set(200, 8, testutil::case_seed(900));
  const auto text = testutil::random_text(64 * 1024, testutil::case_seed(901));
  const DatabasePtr db = compile(Algorithm::vpatch, set);

  Scanner scanner(db);
  testutil::expect_matches_naive(db->engine(), set, text, "scanner-db");
  EXPECT_EQ(scanner.find_matches(text), db->engine().find_matches(text));

  // One Database, many concurrent Scanner sessions: identical results.
  const auto expected = scanner.find_matches(text);
  std::vector<std::vector<Match>> results(4);
  {
    std::vector<std::thread> threads;
    for (auto& out : results) {
      threads.emplace_back([&db, &text, &out] {
        Scanner s(db);
        out = s.find_matches(text);
      });
    }
    for (auto& t : threads) t.join();
  }
  for (const auto& r : results) EXPECT_EQ(r, expected);
}

TEST(Database, ScannerBatchEqualsPerPayloadScan) {
  const auto set = testutil::random_set(100, 6, testutil::case_seed(902));
  const DatabasePtr db = compile(Algorithm::vpatch, set);
  Scanner scanner(db);

  std::vector<util::Bytes> payloads;
  for (std::uint64_t i = 0; i < 16; ++i) {
    payloads.push_back(testutil::random_text(200 + 37 * i, testutil::case_seed(903 + i)));
  }
  std::vector<util::ByteView> views(payloads.begin(), payloads.end());

  struct Collect final : BatchSink {
    std::vector<std::vector<Match>> per_packet;
    void on_match(std::uint32_t packet, const Match& m) override {
      per_packet.resize(std::max<std::size_t>(per_packet.size(), packet + 1));
      per_packet[packet].push_back(m);
    }
  } sink;
  sink.per_packet.resize(views.size());
  scanner.scan_batch(views, sink);

  for (std::size_t i = 0; i < views.size(); ++i) {
    std::sort(sink.per_packet[i].begin(), sink.per_packet[i].end());
    EXPECT_EQ(sink.per_packet[i], scanner.find_matches(views[i])) << "payload " << i;
  }
}

TEST(Database, GenerationsAreUniqueAndMonotonic) {
  const auto set = small_set();
  const DatabasePtr a = compile(Algorithm::aho_corasick, set);
  const DatabasePtr b = compile(Algorithm::aho_corasick, set);
  EXPECT_LT(a->generation(), b->generation());
  // Same content: same fingerprint, regardless of generation or algorithm.
  EXPECT_EQ(a->fingerprint(), b->fingerprint());
  const DatabasePtr c = compile(Algorithm::dfc, set);
  EXPECT_EQ(a->fingerprint(), c->fingerprint());

  pattern::PatternSet other = small_set();
  other.add("one more pattern");
  const DatabasePtr d = compile(Algorithm::aho_corasick, other);
  EXPECT_NE(a->fingerprint(), d->fingerprint());
}

TEST(Database, MemoryBytesCoversEngineAndPatterns) {
  const auto set = small_set();
  const DatabasePtr db = compile(Algorithm::aho_corasick, set);
  EXPECT_GT(db->memory_bytes(), db->engine().memory_bytes());
}

TEST(Database, SaveLoadRoundTripsFingerprintAndAlgorithm) {
  const auto set = testutil::random_set(64, 7, testutil::case_seed(905));
  const auto text = testutil::random_text(8 * 1024, testutil::case_seed(906));
  const DatabasePtr db = compile(Algorithm::spatch, set);

  const util::Bytes blob = db->save_patterns();
  const DatabasePtr loaded = Database::from_serialized(blob);
  EXPECT_EQ(loaded->algorithm(), Algorithm::spatch);
  EXPECT_EQ(loaded->fingerprint(), db->fingerprint());
  EXPECT_GT(loaded->generation(), db->generation());  // a new compile
  EXPECT_EQ(loaded->pattern_count(), db->pattern_count());
  EXPECT_EQ(loaded->engine().find_matches(text), db->engine().find_matches(text));

  // Explicit algorithm override.
  const DatabasePtr overridden = Database::from_serialized(blob, Algorithm::wu_manber);
  EXPECT_EQ(overridden->algorithm(), Algorithm::wu_manber);
  EXPECT_EQ(overridden->engine().find_matches(text), db->engine().find_matches(text));
}

TEST(Database, FromSerializedV1NeedsExplicitAlgorithm) {
  const auto set = small_set();
  const util::Bytes v1 = pattern::serialize_patterns(set);  // header-less legacy blob
  EXPECT_THROW(Database::from_serialized(v1), std::invalid_argument);
  const DatabasePtr db = Database::from_serialized(v1, Algorithm::aho_corasick);
  EXPECT_EQ(db->pattern_count(), set.size());
  EXPECT_EQ(db->fingerprint(), Database::fingerprint_of(set));
}

TEST(Database, FromSerializedRejectsCorruptPayload) {
  const DatabasePtr db = compile(Algorithm::naive, small_set());
  util::Bytes blob = db->save_patterns();

  // Flip one pattern byte: content no longer matches the stored fingerprint.
  blob[blob.size() - 1] ^= 0x01;
  EXPECT_THROW(Database::from_serialized(blob), std::invalid_argument);

  // Zeroing the fingerprint field must not disable the integrity check: a
  // v2 blob without a matching fingerprint is rejected outright.
  util::Bytes zeroed = db->save_patterns();
  for (std::size_t i = 16; i < 24; ++i) zeroed[i] = 0;
  EXPECT_THROW(Database::from_serialized(zeroed), std::invalid_argument);

  // Truncation at EVERY prefix length must throw, never crash or misparse
  // (the v2 header is 28 bytes; cuts inside header, counts, and pattern
  // records all land here).
  const util::Bytes good = db->save_patterns();
  for (std::size_t cut = 0; cut < good.size(); ++cut) {
    EXPECT_THROW(Database::from_serialized(util::ByteView(good.data(), cut)),
                 std::invalid_argument)
        << "cut=" << cut;
  }

  // Bad magic / unsupported version.
  util::Bytes bad_magic = good;
  bad_magic[5] = '9';
  EXPECT_THROW(Database::from_serialized(bad_magic), std::invalid_argument);
  util::Bytes bad_version = good;
  bad_version[8] = 99;
  EXPECT_THROW(Database::from_serialized(bad_version), std::invalid_argument);
}

TEST(Scanner, RebindMovesSessionToNewDatabase) {
  pattern::PatternSet first;
  first.add("alpha");
  pattern::PatternSet second;
  second.add("beta");

  Scanner scanner(compile(Algorithm::vpatch, first));
  const auto text = util::as_view("alpha beta alpha");
  EXPECT_EQ(scanner.count_matches(text), 2u);

  scanner.rebind(compile(Algorithm::vpatch, second));
  EXPECT_EQ(scanner.count_matches(text), 1u);
  EXPECT_THROW(scanner.rebind(nullptr), std::invalid_argument);
}

TEST(Scanner, NullDatabaseRejected) {
  EXPECT_THROW(Scanner{nullptr}, std::invalid_argument);
}

}  // namespace
}  // namespace vpm
