// Parallel scan tests: thread-count invariance, boundary attribution, and
// equivalence with single-threaded scanning for every engine.
#include <gtest/gtest.h>

#include "core/matcher_factory.hpp"
#include "core/parallel_scan.hpp"
#include "helpers.hpp"

namespace vpm::core {
namespace {

TEST(ParallelScan, MatchesSingleThreadResult) {
  const auto set = testutil::random_set(80, 10, testutil::case_seed(1));
  const auto m = make_matcher(Algorithm::vpatch, set);
  const auto text = testutil::random_text(300000, testutil::case_seed(2));
  const auto expected = m->find_matches(text);
  for (unsigned threads : {1u, 2u, 3u, 4u, 8u}) {
    ParallelScanConfig cfg;
    cfg.threads = threads;
    cfg.max_pattern_len = set.max_pattern_length();
    EXPECT_EQ(parallel_find_matches(*m, text, cfg), expected)
        << threads << " threads (" << testutil::seed_note() << ")";
    EXPECT_EQ(parallel_count_matches(*m, text, cfg), expected.size()) << threads;
  }
}

TEST(ParallelScan, BoundaryStraddlingMatchAttributedOnce) {
  pattern::PatternSet set;
  set.add("straddler");
  const auto m = make_matcher(Algorithm::spatch, set);
  // Large input so the splitter actually uses >1 segment; matches planted
  // everywhere, including exactly at segment boundaries for 2 threads.
  std::string text(400000, '.');
  const std::size_t half = text.size() / 2;
  for (std::size_t pos : {std::size_t{0}, half - 9, half - 4, half, half + 1,
                          text.size() - 9}) {
    text.replace(pos, 9, "straddler");
  }
  ParallelScanConfig cfg;
  cfg.threads = 2;
  cfg.max_pattern_len = 9;
  const auto matches = parallel_find_matches(*m, util::as_view(text), cfg);
  EXPECT_EQ(matches.size(), m->find_matches(util::as_view(text)).size());
}

TEST(ParallelScan, EveryEngineAgrees) {
  const auto set = testutil::random_set(50, 8, testutil::case_seed(3));
  const auto text = testutil::random_text(200000, testutil::case_seed(4));
  ParallelScanConfig cfg;
  cfg.threads = 3;
  cfg.max_pattern_len = set.max_pattern_length();
  const auto reference = make_matcher(Algorithm::aho_corasick, set)->find_matches(text);
  for (Algorithm a : available_algorithms()) {
    if (a == Algorithm::naive) continue;
    const auto m = make_matcher(a, set);
    EXPECT_EQ(parallel_find_matches(*m, text, cfg), reference)
        << m->name() << " (" << testutil::seed_note() << ")";
  }
}

TEST(ParallelScan, SmallInputFallsBackToSingleThread) {
  const auto set = testutil::boundary_set();
  const auto m = make_matcher(Algorithm::spatch, set);
  const auto text = testutil::random_text(100, testutil::case_seed(5));
  ParallelScanConfig cfg;
  cfg.threads = 8;
  cfg.max_pattern_len = set.max_pattern_length();
  EXPECT_EQ(parallel_find_matches(*m, text, cfg), m->find_matches(text));
}

TEST(ParallelScan, EmptyInput) {
  const auto set = testutil::boundary_set();
  const auto m = make_matcher(Algorithm::spatch, set);
  ParallelScanConfig cfg;
  cfg.threads = 4;
  EXPECT_TRUE(parallel_find_matches(*m, {}, cfg).empty());
  EXPECT_EQ(parallel_count_matches(*m, {}, cfg), 0u);
}

TEST(ParallelScan, SetAwareOverloadDerivesExactOverlap) {
  // The footgun this guards: a config default shorter than the longest
  // pattern used to silently lose boundary-straddling matches.  The
  // set-aware overloads derive the overlap from the actual set.
  const auto set = testutil::random_set(60, 12, testutil::case_seed(8));
  const auto m = make_matcher(Algorithm::vpatch, set);
  const auto text = testutil::random_text(300000, testutil::case_seed(9));
  const auto expected = m->find_matches(text);
  for (unsigned threads : {2u, 4u}) {
    ParallelScanConfig cfg;
    cfg.threads = threads;  // max_pattern_len left 0: derived from the set
    EXPECT_EQ(parallel_find_matches(*m, set, text, cfg), expected)
        << threads << " threads (" << testutil::seed_note() << ")";
    EXPECT_EQ(parallel_count_matches(*m, set, text, cfg), expected.size()) << threads;
  }
}

TEST(ParallelScan, SetAwareAcceptsExplicitGenerousBound) {
  const auto set = testutil::random_set(40, 6, testutil::case_seed(10));
  const auto m = make_matcher(Algorithm::spatch, set);
  const auto text = testutil::random_text(200000, testutil::case_seed(11));
  ParallelScanConfig cfg;
  cfg.threads = 3;
  cfg.max_pattern_len = 4096;  // >= true max: allowed, still exact
  EXPECT_EQ(parallel_find_matches(*m, set, text, cfg), m->find_matches(text));
}

TEST(ParallelScan, SetlessZeroFallsBackToSingleThreadedScan) {
  // Without a PatternSet the scan cannot know the true max; an unspecified
  // bound degrades to a plain single-threaded scan — slower, never wrong.
  pattern::PatternSet set;
  const std::string long_pattern(500, 'q');
  set.add(long_pattern);
  const auto m = make_matcher(Algorithm::aho_corasick, set);
  std::string text(400000, '.');
  const std::size_t half = text.size() / 2;
  text.replace(half - long_pattern.size() / 2, long_pattern.size(), long_pattern);
  ParallelScanConfig cfg;
  cfg.threads = 2;  // max_pattern_len left 0
  EXPECT_EQ(parallel_find_matches(*m, util::as_view(text), cfg).size(), 1u)
      << "a 500-byte straddler must survive the set-less default";
  EXPECT_EQ(parallel_count_matches(*m, util::as_view(text), cfg), 1u);
}

TEST(ParallelScan, OverestimatedMaxLenIsSafe) {
  const auto set = testutil::random_set(40, 6, testutil::case_seed(6));
  const auto m = make_matcher(Algorithm::vpatch, set);
  const auto text = testutil::random_text(200000, testutil::case_seed(7));
  ParallelScanConfig exact;
  exact.threads = 2;
  exact.max_pattern_len = set.max_pattern_length();
  ParallelScanConfig generous;
  generous.threads = 2;
  generous.max_pattern_len = 4096;
  EXPECT_EQ(parallel_find_matches(*m, text, exact),
            parallel_find_matches(*m, text, generous));
}

}  // namespace
}  // namespace vpm::core
