// Traffic-profiling / filter-planning tests (the paper's future-work hook).
#include <gtest/gtest.h>

#include "core/spatch.hpp"
#include "core/traffic_profile.hpp"
#include "helpers.hpp"
#include "pattern/ruleset_gen.hpp"
#include "traffic/http_trace.hpp"
#include "traffic/random_trace.hpp"

namespace vpm::core {
namespace {

TEST(TrafficProfile, CountsEveryWindow) {
  const auto text = util::to_bytes("abcab");
  const TrafficProfile p = profile_traffic(text);
  EXPECT_EQ(p.total_windows, 4u);
  EXPECT_EQ(p.window2_counts[util::load_u16(util::to_bytes("ab").data())], 2u);
  EXPECT_EQ(p.window2_counts[util::load_u16(util::to_bytes("bc").data())], 1u);
  EXPECT_EQ(p.window2_counts[util::load_u16(util::to_bytes("ca").data())], 1u);
}

TEST(TrafficProfile, FrequencySumsToOne) {
  const auto trace = traffic::generate_http_trace(traffic::iscx_day2_config(1 << 16, 1));
  const TrafficProfile p = profile_traffic(trace);
  double sum = 0.0;
  for (std::uint32_t w = 0; w < (1u << 16); ++w) sum += p.frequency(w);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(TrafficProfile, AccumulateEqualsOneShot) {
  const auto a = testutil::random_text(5000, 1);
  const TrafficProfile whole = profile_traffic(a);
  TrafficProfile split;
  accumulate_profile(split, {a.data(), 2000});
  accumulate_profile(split, {a.data() + 2000, 3000});
  // Split profiling misses the one window straddling the cut.
  EXPECT_EQ(split.total_windows + 1, whole.total_windows);
}

TEST(TrafficProfile, TinySamplesAreSafe) {
  EXPECT_EQ(profile_traffic({}).total_windows, 0u);
  const auto one = util::to_bytes("x");
  EXPECT_EQ(profile_traffic(one).total_windows, 0u);
  EXPECT_EQ(TrafficProfile{}.frequency(0), 0.0);
}

TEST(FilterPlan, PredictsExactShortRate) {
  // Single short pattern "ab" on traffic that is 50% "ab" windows.
  pattern::PatternSet set;
  set.add("ab");
  const auto text = util::to_bytes("abababab");
  const TrafficProfile p = profile_traffic(text);
  const FilterPlan plan = plan_filters(set, p);
  // Windows: ab,ba,ab,ba,ab,ba,ab -> 4/7 are "ab".
  EXPECT_NEAR(plan.f1_hit_rate, 4.0 / 7.0, 1e-9);
  EXPECT_DOUBLE_EQ(plan.f2_hit_rate, 0.0);
}

TEST(FilterPlan, PredictionMatchesMeasuredCandidates) {
  // The planner's expected F1/F2 rates are exact expectations over the
  // profiled traffic; measured candidate counts must agree closely when the
  // profile IS the scanned traffic.
  const auto set = testutil::random_set(200, 10, 7);
  const auto trace = traffic::generate_http_trace(traffic::iscx_day2_config(1 << 18, 8));
  const TrafficProfile profile = profile_traffic(trace);
  const FilterPlan plan = plan_filters(set, profile);

  const SpatchMatcher m(set);
  const auto counts = m.filter_only(trace, false);
  const double measured_f1 =
      static_cast<double>(counts.short_candidates) / static_cast<double>(trace.size() - 1);
  EXPECT_NEAR(measured_f1, plan.f1_hit_rate, 0.01);
}

TEST(FilterPlan, LargerTargetAllowsSmallerFilter) {
  const auto set = testutil::random_set(2000, 12, 9, 26);
  const auto trace = traffic::generate_http_trace(traffic::iscx_day2_config(1 << 16, 10));
  const TrafficProfile profile = profile_traffic(trace);
  const FilterPlan strict = plan_filters(set, profile, 0.001);
  const FilterPlan loose = plan_filters(set, profile, 0.5);
  EXPECT_GE(strict.f3_bits_log2, loose.f3_bits_log2);
}

TEST(FilterPlan, PlannedSizeIsUsable) {
  const auto set = testutil::random_set(100, 10, 11);
  const auto trace = traffic::generate_random_printable_trace(1 << 16, 12);
  const FilterPlan plan = plan_filters(set, profile_traffic(trace));
  SpatchConfig cfg;
  cfg.filters.f3_bits_log2 = plan.f3_bits_log2;
  const SpatchMatcher m(set, cfg);
  testutil::expect_matches_naive(m, set, trace);
}

TEST(FilterPlan, RandomTrafficHasLowerHitRateThanHttp) {
  // The paper's observation: realistic traffic hits the filters far more
  // than uniform random bytes (clustered 2-byte windows vs uniform).
  pattern::RulesetConfig rcfg;
  rcfg.count = 1000;
  rcfg.seed = 13;
  const auto set = pattern::generate_ruleset(rcfg);
  const auto http = traffic::generate_http_trace(traffic::iscx_day2_config(1 << 18, 14));
  const auto rand = traffic::generate_random_trace(1 << 18, 15);
  const FilterPlan http_plan = plan_filters(set, profile_traffic(http));
  const FilterPlan rand_plan = plan_filters(set, profile_traffic(rand));
  EXPECT_GT(http_plan.f1_hit_rate + http_plan.f2_hit_rate,
            rand_plan.f1_hit_rate + rand_plan.f2_hit_rate);
}

}  // namespace
}  // namespace vpm::core
