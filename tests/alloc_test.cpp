// Proves the batch-scan steady state is allocation-free: this binary
// replaces global operator new/delete with counting versions, warms up the
// matcher scratch / engine flow tables / batch machinery, then drives many
// more rounds under churny batch- and chunk-size variation and asserts the
// allocation counter does not move.  This is the zero-alloc contract the
// pipeline worker's scan loop relies on under sustained small-packet load.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <iterator>
#include <new>
#include <string>
#include <vector>

#include "core/matcher_factory.hpp"
#include "helpers.hpp"
#include "ids/engine.hpp"
#include "telemetry/metrics.hpp"
#include "util/failpoint.hpp"

namespace {
std::atomic<std::uint64_t> g_allocations{0};

void* counted_alloc(std::size_t n) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(n != 0 ? n : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* counted_alloc_aligned(std::size_t n, std::size_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, align, n != 0 ? n : align) != 0) throw std::bad_alloc();
  return p;
}
}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, std::align_val_t a) {
  return counted_alloc_aligned(n, static_cast<std::size_t>(a));
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return counted_alloc_aligned(n, static_cast<std::size_t>(a));
}
// Nothrow variants too (std::stable_sort's temporary buffer uses them):
// leaving them to the default implementation would pair a foreign new with
// our free-based delete — an alloc/dealloc mismatch under ASan.
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n != 0 ? n : 1);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n != 0 ? n : 1);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace vpm {
namespace {

using testutil::case_seed;
using testutil::seed_note;

struct CountingBatchSink final : BatchSink {
  std::uint64_t matches = 0;
  void on_match(std::uint32_t, const Match&) override { ++matches; }
};

struct CountingAlertSink final : ids::AlertSink {
  std::uint64_t alerts = 0;
  void on_alert(const ids::Alert&) override { ++alerts; }
};

// Matcher-level: scan_batch with a reused scratch, batch size churning
// between rounds, must not allocate after the first full-size round.  The
// AC compact variant pins the lane kernel's staging + hit-pool scratch (the
// pipeline's fallback engine for long/dense rulesets) alongside V-PATCH and
// DFC.
TEST(AllocTest, MatcherBatchScanSteadyStateIsAllocationFree) {
  for (core::Algorithm algo : {core::Algorithm::vpatch, core::Algorithm::dfc,
                               core::Algorithm::aho_corasick_compact}) {
    const auto set = testutil::random_set(300, 6, case_seed(301));
    const auto matcher = core::make_matcher(algo, set);
    std::vector<util::Bytes> payloads;
    for (std::size_t i = 0; i < 32; ++i) {
      payloads.push_back(testutil::random_text(256, case_seed(302) + i));
    }
    std::vector<util::ByteView> views(payloads.begin(), payloads.end());

    ScanScratch scratch;
    CountingBatchSink sink;
    const auto drive = [&](std::size_t batch) {
      for (std::size_t begin = 0; begin < views.size(); begin += batch) {
        const std::size_t count = std::min(batch, views.size() - begin);
        matcher->scan_batch({views.data() + begin, count}, sink, scratch);
      }
    };

    // Warm-up: largest batch first (high-water scratch), then churn.
    for (std::size_t batch : {std::size_t{32}, std::size_t{20}, std::size_t{7},
                              std::size_t{1}}) {
      drive(batch);
    }

    const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
    for (int round = 0; round < 20; ++round) {
      for (std::size_t batch : {std::size_t{32}, std::size_t{7}, std::size_t{1},
                                std::size_t{20}}) {
        drive(batch);
      }
    }
    const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);
    EXPECT_EQ(after, before) << core::algorithm_name(algo)
                             << " allocated in steady state (" << seed_note() << ")";
    EXPECT_GT(sink.matches, 0u) << "workload must produce matches to be meaningful";
  }
}

// Engine-level: the worker scan loop body — stage() per chunk across mixed
// protocol groups and flows, flush_batch() per round — with chunk sizes
// churning, must not allocate once flow buffers and scratch reached their
// high-water marks.
TEST(AllocTest, EngineStageFlushSteadyStateIsAllocationFree) {
  const auto rules = testutil::random_set(200, 6, case_seed(303));
  ids::IdsEngine engine(rules, {core::Algorithm::vpatch});
  CountingAlertSink sink;

  const util::Bytes pool = testutil::random_text(1 << 16, case_seed(304));
  const pattern::Group groups[] = {pattern::Group::http, pattern::Group::generic,
                                   pattern::Group::dns};
  const std::size_t sizes[] = {1500, 700, 256, 64, 1};

  const auto drive = [&](int round) {
    for (std::uint64_t flow = 0; flow < 6; ++flow) {
      const std::size_t size = sizes[(round + flow) % std::size(sizes)];
      const std::size_t offset = ((round * 131 + flow * 977) % (pool.size() - 1500));
      engine.stage(flow, groups[flow % std::size(groups)],
                   {pool.data() + offset, size}, sink);
    }
    engine.flush_batch(sink);
  };

  for (int round = 0; round < 10; ++round) drive(round);  // warm-up

  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int round = 0; round < 50; ++round) drive(round);
  const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before) << "engine batch loop allocated in steady state ("
                           << seed_note() << ")";
  EXPECT_GT(sink.alerts, 0u) << "workload must produce alerts to be meaningful";
}

// Engine-level with the approximate prefilter forced on: the screen stages
// case-folded payload copies and emits verdicts every flush — all of it
// grow-to-high-water, so the steady state must stay allocation-free.  The
// ruleset has a length floor (random_set's 1-byte patterns would null the
// signatures and silently skip the screen path).
TEST(AllocTest, EnginePrefilterScreenSteadyStateIsAllocationFree) {
  pattern::PatternSet rules;
  {
    util::Rng rng(case_seed(305));
    while (rules.size() < 150) {
      const std::size_t len = 4 + rng.below(5);  // 4..8 bytes
      util::Bytes b(len);
      for (auto& c : b) c = static_cast<std::uint8_t>('a' + rng.below(4));
      rules.add(std::move(b), rng.chance(0.3));
    }
  }
  ids::IdsEngine engine(rules, {core::Algorithm::vpatch, core::PrefilterMode::on});
  CountingAlertSink sink;

  const util::Bytes pool = testutil::random_text(1 << 16, case_seed(306));
  const pattern::Group groups[] = {pattern::Group::http, pattern::Group::generic,
                                   pattern::Group::dns};
  const std::size_t sizes[] = {1500, 700, 256, 64, 1};

  const auto drive = [&](int round) {
    for (std::uint64_t flow = 0; flow < 6; ++flow) {
      const std::size_t size = sizes[(round + flow) % std::size(sizes)];
      const std::size_t offset = ((round * 131 + flow * 977) % (pool.size() - 1500));
      engine.stage(flow, groups[flow % std::size(groups)],
                   {pool.data() + offset, size}, sink);
    }
    engine.flush_batch(sink);
  };

  for (int round = 0; round < 10; ++round) drive(round);  // warm-up

  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int round = 0; round < 50; ++round) drive(round);
  const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before) << "prefilter screen allocated in steady state ("
                           << seed_note() << ")";
  const auto& counters = engine.counters();
  EXPECT_GT(counters.prefilter_pass_payloads + counters.prefilter_reject_payloads, 0u)
      << "the screen must actually have run to be meaningful";
  EXPECT_GT(sink.alerts, 0u) << "workload must produce alerts to be meaningful";
}

// The disarmed failpoint check sits on the hottest paths (every ring push
// and pop, every reassembly buffering decision): it must stay one relaxed
// load — no allocation, and no fires.
TEST(AllocTest, DisarmedFailpointCheckIsAllocationFree) {
  util::failpoint::disarm();
  bool any = false;
  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 1'000'000; ++i) {
    any |= util::failpoint::should_fail(util::failpoint::Site::ring_push);
    any |= util::failpoint::should_fail(util::failpoint::Site::reassembly_buffer);
  }
  const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before) << "disarmed should_fail must not allocate";
  EXPECT_FALSE(any);
}

// Telemetry record paths: counter add, gauge set, histogram record — the
// operations the scan path performs once instruments are registered — must
// never allocate.  Registration may (and does) allocate; that is setup.
TEST(AllocTest, TelemetryRecordPathIsAllocationFree) {
  telemetry::MetricsRegistry registry;
  telemetry::Counter& counter =
      registry.counter("alloc_test_ops_total", "ops", {{"worker", "0"}});
  telemetry::Gauge& gauge = registry.gauge("alloc_test_depth", "depth");
  telemetry::Histogram& latency =
      registry.histogram("alloc_test_latency_seconds", "lat",
                         telemetry::latency_buckets_seconds(), {{"worker", "0"}});
  telemetry::Histogram& sizes = registry.histogram(
      "alloc_test_bytes", "sz", telemetry::size_buckets_bytes(), {{"worker", "0"}});

  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 100000; ++i) {
    counter.add(3);
    gauge.set(i);
    latency.record(static_cast<double>(i % 977) * 1e-6);
    sizes.record(static_cast<double>((i * 131) % 65536));
  }
  const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before) << "telemetry record path allocated";
  EXPECT_EQ(counter.value(), 300000u);
  EXPECT_EQ(latency.snapshot().count, 100000u);
}

// Engine-level with instruments installed: the flush-latency histogram and
// per-group counters ride the batch loop without breaking its zero-alloc
// steady state (the contract PipelineConfig::metrics documents).
TEST(AllocTest, EngineWithTelemetrySteadyStateIsAllocationFree) {
  const auto rules = testutil::random_set(200, 6, case_seed(303));
  ids::IdsEngine engine(rules, {core::Algorithm::vpatch});
  CountingAlertSink sink;

  telemetry::MetricsRegistry registry;
  ids::EngineTelemetry et;
  et.flush_latency = &registry.histogram(
      "vpm_scan_latency_seconds", "lat", telemetry::latency_buckets_seconds());
  for (std::size_t gi = 0; gi < ids::kEngineGroupCount; ++gi) {
    const std::string group(pattern::group_name(static_cast<pattern::Group>(gi)));
    et.group_scan_bytes[gi] =
        &registry.counter("vpm_group_scan_bytes_total", "b", {{"group", group}});
    et.group_alerts[gi] =
        &registry.counter("vpm_group_alerts_total", "a", {{"group", group}});
  }
  engine.set_telemetry(et);

  const util::Bytes pool = testutil::random_text(1 << 16, case_seed(304));
  const pattern::Group groups[] = {pattern::Group::http, pattern::Group::generic,
                                   pattern::Group::dns};
  const std::size_t sizes[] = {1500, 700, 256, 64, 1};

  const auto drive = [&](int round) {
    for (std::uint64_t flow = 0; flow < 6; ++flow) {
      const std::size_t size = sizes[(round + flow) % std::size(sizes)];
      const std::size_t offset = ((round * 131 + flow * 977) % (pool.size() - 1500));
      engine.stage(flow, groups[flow % std::size(groups)],
                   {pool.data() + offset, size}, sink);
    }
    engine.flush_batch(sink);
  };

  for (int round = 0; round < 10; ++round) drive(round);  // warm-up

  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int round = 0; round < 50; ++round) drive(round);
  const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before) << "instrumented engine batch loop allocated ("
                           << seed_note() << ")";
  const telemetry::Histogram* h = registry.find_histogram("vpm_scan_latency_seconds", {});
  ASSERT_NE(h, nullptr);
  EXPECT_GT(h->snapshot().count, 0u) << "flush latency must have been recorded";
}

}  // namespace
}  // namespace vpm
