// Pipeline runtime unit tests: the SPSC ring, flow-stable sharding, batching
// and backpressure in the router, drain semantics, idle-flow eviction under
// adversarial churn, live stats snapshots, and alert-sink decoupling.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <thread>

#include "helpers.hpp"
#include "net/flowgen.hpp"
#include "pipeline/runtime.hpp"

namespace vpm::pipeline {
namespace {

net::Packet tcp_packet(std::uint32_t src_ip, std::uint16_t src_port, std::uint32_t seq,
                       std::string_view payload, std::uint64_t ts = 0,
                       std::uint16_t dst_port = 80) {
  net::Packet p;
  p.timestamp_us = ts;
  p.tuple.src_ip = src_ip;
  p.tuple.dst_ip = 0xC0A80001;
  p.tuple.src_port = src_port;
  p.tuple.dst_port = dst_port;
  p.tuple.proto = net::IpProto::tcp;
  p.tcp_seq = seq;
  p.payload = util::to_bytes(payload);
  return p;
}

// ---- SPSC ring ------------------------------------------------------------

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  SpscRing<int> r3(3);
  EXPECT_EQ(r3.capacity(), 4u);
  SpscRing<int> r8(8);
  EXPECT_EQ(r8.capacity(), 8u);
  SpscRing<int> r1(1);
  EXPECT_EQ(r1.capacity(), 1u);
}

TEST(SpscRing, FifoOrderAndFullEmpty) {
  SpscRing<int> ring(4);
  int v;
  EXPECT_FALSE(ring.try_pop(v));
  for (int i = 0; i < 4; ++i) {
    int item = i;
    EXPECT_TRUE(ring.try_push(item)) << i;
  }
  int extra = 99;
  EXPECT_FALSE(ring.try_push(extra));
  EXPECT_EQ(extra, 99) << "failed push must leave the item untouched";
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.try_pop(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(ring.try_pop(v));
}

TEST(SpscRing, TwoThreadTransferPreservesEveryItem) {
  constexpr int kItems = 100000;
  SpscRing<int> ring(64);
  std::atomic<bool> done{false};
  std::uint64_t sum = 0;
  int received = 0;
  std::thread consumer([&] {
    int v;
    for (;;) {
      if (ring.try_pop(v)) {
        sum += static_cast<std::uint64_t>(v);
        ++received;
        continue;
      }
      if (done.load(std::memory_order_acquire)) {
        if (ring.try_pop(v)) {
          sum += static_cast<std::uint64_t>(v);
          ++received;
          continue;
        }
        break;
      }
      std::this_thread::yield();
    }
  });
  for (int i = 1; i <= kItems; ++i) {
    int item = i;
    while (!ring.try_push(item)) std::this_thread::yield();
  }
  done.store(true, std::memory_order_release);
  consumer.join();
  EXPECT_EQ(received, kItems);
  EXPECT_EQ(sum, static_cast<std::uint64_t>(kItems) * (kItems + 1) / 2);
}

// ---- sharding -------------------------------------------------------------

TEST(ShardRouter, ShardIsStableAndInRange) {
  for (unsigned shards : {1u, 2u, 4u, 7u}) {
    for (std::uint32_t i = 0; i < 200; ++i) {
      net::FiveTuple t;
      t.src_ip = 0x0A000000u + i;
      t.src_port = static_cast<std::uint16_t>(40000 + i);
      t.dst_port = 80;
      const unsigned s = shard_of(t, shards);
      EXPECT_LT(s, shards);
      EXPECT_EQ(s, shard_of(t, shards)) << "must be deterministic";
    }
  }
}

TEST(ShardRouter, AllShardsGetFlowsEventually) {
  // 256 distinct tuples over 4 shards: every shard should own at least one
  // flow unless the mixer is badly broken.
  std::vector<bool> hit(4, false);
  for (std::uint32_t i = 0; i < 256; ++i) {
    net::FiveTuple t;
    t.src_ip = 0x0A000000u + i;
    t.src_port = static_cast<std::uint16_t>(40000 + (i * 7) % 20000);
    t.dst_port = 80;
    hit[shard_of(t, 4)] = true;
  }
  for (int s = 0; s < 4; ++s) EXPECT_TRUE(hit[s]) << "shard " << s << " never hit";
}

TEST(ShardRouter, DropPolicyCountsDiscardedPackets) {
  // Router + ring without a consumer: the ring fills, then drops are counted
  // and route() reports them.
  SpscRing<PacketBatch> ring(2);
  ShardRouter router({&ring}, /*batch_packets=*/1, BackpressurePolicy::drop);
  int accepted = 0, rejected = 0;
  for (std::uint32_t i = 0; i < 10; ++i) {
    if (router.route(tcp_packet(1, 40000, i * 4, "abcd"))) {
      ++accepted;
    } else {
      ++rejected;
    }
  }
  EXPECT_EQ(accepted, 2);  // ring capacity
  EXPECT_EQ(rejected, 8);
  EXPECT_EQ(router.routed(), 2u);
  EXPECT_EQ(router.dropped(), 8u);
}

TEST(ShardRouter, FlushDeliversPartialBatches) {
  SpscRing<PacketBatch> ring(8);
  ShardRouter router({&ring}, /*batch_packets=*/64, BackpressurePolicy::block);
  for (std::uint32_t i = 0; i < 5; ++i) {
    router.route(tcp_packet(1, 40000, i * 4, "abcd"));
  }
  PacketBatch batch;
  EXPECT_FALSE(ring.try_pop(batch)) << "batch not full yet";
  router.flush();
  ASSERT_TRUE(ring.try_pop(batch));
  EXPECT_EQ(batch.size(), 5u);
  EXPECT_EQ(router.routed(), 5u);
}

// ---- runtime --------------------------------------------------------------

pattern::PatternSet demo_rules() {
  pattern::PatternSet rules;
  rules.add("NEEDLE", false, pattern::Group::http);
  rules.add("GET /", false, pattern::Group::http);
  rules.add("zz-generic-zz", false, pattern::Group::generic);
  return rules;
}

TEST(PipelineRuntime, FindsPatternSplitAcrossSegmentsAndWorkers) {
  const auto rules = demo_rules();
  PipelineConfig cfg;
  cfg.workers = 4;
  cfg.batch_packets = 2;
  PipelineRuntime rt(rules, cfg);
  rt.start();
  // 8 flows; each carries "NEEDLE" split across the first two segments, and
  // the later segments arrive out of order (the head segment must come
  // first — it pins the flow's initial sequence number).
  for (std::uint32_t f = 0; f < 8; ++f) {
    rt.submit(tcp_packet(100 + f, 50000, 100, "NEE", 10));
    rt.submit(tcp_packet(100 + f, 50000, 107, "tail-part", 20));  // buffered
    rt.submit(tcp_packet(100 + f, 50000, 103, "DLE ", 30));       // fills the hole
  }
  rt.stop();
  EXPECT_EQ(rt.alerts().size(), 8u);
  for (const auto& a : rt.alerts()) {
    EXPECT_EQ(a.pattern_id, 0u);
    EXPECT_EQ(a.stream_offset, 0u);
    EXPECT_EQ(a.group, pattern::Group::http);
  }
  const auto totals = rt.stats().totals();
  EXPECT_EQ(totals.packets, 24u);
  EXPECT_EQ(totals.alerts, 8u);
  EXPECT_EQ(totals.flows_seen, 8u);
  EXPECT_EQ(rt.stats().routed, 24u);
  EXPECT_EQ(rt.stats().dropped_backpressure, 0u);
}

TEST(PipelineRuntime, BlockingBackpressureIsLossless) {
  const auto rules = demo_rules();
  PipelineConfig cfg;
  cfg.workers = 2;
  cfg.batch_packets = 1;
  cfg.ring_batches = 2;  // tiny rings so the producer actually blocks
  PipelineRuntime rt(rules, cfg);
  rt.start();
  constexpr std::uint32_t kPackets = 5000;
  for (std::uint32_t i = 0; i < kPackets; ++i) {
    rt.submit(tcp_packet(1 + (i % 16), 40000, (i / 16) * 8, "GET /abc", i));
  }
  rt.stop();
  const auto stats = rt.stats();
  EXPECT_EQ(stats.submitted, kPackets);
  EXPECT_EQ(stats.routed, kPackets);
  EXPECT_EQ(stats.dropped_backpressure, 0u);
  EXPECT_EQ(stats.totals().packets, kPackets);
}

TEST(PipelineRuntime, StatsSnapshotWhileRunning) {
  const auto rules = demo_rules();
  PipelineConfig cfg;
  cfg.workers = 2;
  cfg.batch_packets = 4;
  PipelineRuntime rt(rules, cfg);
  rt.start();
  for (std::uint32_t i = 0; i < 2000; ++i) {
    rt.submit(tcp_packet(1 + (i % 8), 40000, (i / 8) * 8, "GET /abc", i));
    if (i == 1000) {
      rt.flush();
      const auto mid = rt.stats();
      EXPECT_EQ(mid.submitted, 1001u);
      EXPECT_LE(mid.totals().packets, 1001u);
      EXPECT_EQ(mid.workers.size(), 2u);
    }
  }
  rt.stop();
  EXPECT_EQ(rt.stats().totals().packets, 2000u);
}

TEST(PipelineRuntime, ThreadSafeAlertSinkReceivesEverything) {
  struct LockedSink final : ids::AlertSink {
    std::mutex mu;
    std::vector<ids::Alert> alerts;
    void on_alert(const ids::Alert& a) override {
      std::lock_guard<std::mutex> lock(mu);
      alerts.push_back(a);
    }
  } sink;
  const auto rules = demo_rules();
  PipelineConfig cfg;
  cfg.workers = 3;
  cfg.alert_sink = &sink;
  PipelineRuntime rt(rules, cfg);
  rt.start();
  for (std::uint32_t f = 0; f < 12; ++f) {
    rt.submit(tcp_packet(200 + f, 50000, 0, "xx NEEDLE yy", f));
  }
  rt.stop();
  EXPECT_TRUE(rt.alerts().empty()) << "alerts were routed to the external sink";
  EXPECT_EQ(sink.alerts.size(), 12u);
  EXPECT_EQ(rt.stats().totals().alerts, 12u);
}

TEST(PipelineRuntime, IsOneShot) {
  const auto rules = demo_rules();
  PipelineRuntime rt(rules, {});
  EXPECT_THROW(rt.submit(tcp_packet(1, 2, 0, "x")), std::logic_error);
  rt.start();
  EXPECT_THROW(rt.start(), std::logic_error);
  rt.stop();
  rt.stop();  // idempotent
  EXPECT_THROW(rt.start(), std::logic_error);
}

// ---- idle eviction under churn -------------------------------------------
//
// The satellite contract: many short-lived flows plus out-of-order floods
// must trigger the eviction/drop counters without leaking flow state —
// active_flows() stays bounded no matter how many flows pass through.

TEST(PipelineRuntime, ChurnOfShortLivedFlowsStaysBounded) {
  const auto rules = demo_rules();
  PipelineConfig cfg;
  cfg.workers = 2;
  cfg.batch_packets = 8;
  cfg.idle_timeout_us = 1000;        // 1 ms of capture time
  cfg.eviction_sweep_packets = 64;
  cfg.reassembly.max_buffered_bytes = 4096;
  PipelineRuntime rt(rules, cfg);
  rt.start();

  constexpr std::uint32_t kFlows = 3000;
  std::uint64_t now_us = 0;
  for (std::uint32_t f = 0; f < kFlows; ++f) {
    now_us += 50;  // each flow starts 50 us after the previous one
    const std::uint32_t src_ip = 0x0A000000u + f;
    const auto src_port = static_cast<std::uint16_t>(40000 + (f % 20000));
    // A short-lived flow: one in-order segment, then an out-of-order flood
    // beyond a hole that can never fill (sequence gap), exercising both the
    // reassembly budget (drops) and eviction (the hole never completes).
    rt.submit(tcp_packet(src_ip, src_port, 0, "GET /index.html", now_us));
    for (std::uint32_t k = 0; k < 6; ++k) {
      rt.submit(tcp_packet(src_ip, src_port, 2000 + k * 1000,
                           std::string(900, 'a' + static_cast<char>(k % 26)),
                           now_us + k));
    }
  }
  rt.stop();

  const auto totals = rt.stats().totals();
  EXPECT_EQ(totals.flows_seen, kFlows) << "every flow inspected at least once";
  EXPECT_GT(totals.flows_evicted, 0u) << "idle eviction must have fired";
  EXPECT_GT(totals.reassembly_drops, 0u) << "flood must exhaust the per-flow budget";
  // The leak check: far fewer flows retained than were ever seen.  The exact
  // count depends on sweep timing; the bound just has to be "not O(flows)".
  EXPECT_LT(totals.active_flows, kFlows / 4)
      << "flow tables must stay bounded under churn (" << testutil::seed_note() << ")";
}

TEST(PipelineRuntime, EvictionDisabledKeepsAllFlows) {
  const auto rules = demo_rules();
  PipelineConfig cfg;
  cfg.workers = 2;
  cfg.idle_timeout_us = 0;  // disabled
  PipelineRuntime rt(rules, cfg);
  rt.start();
  for (std::uint32_t f = 0; f < 100; ++f) {
    rt.submit(tcp_packet(0x0A000000u + f, 40000, 0, "GET /x", f * 1000000));
  }
  rt.stop();
  const auto totals = rt.stats().totals();
  EXPECT_EQ(totals.flows_seen, 100u);
  EXPECT_EQ(totals.flows_evicted, 0u);
  EXPECT_EQ(totals.active_flows, 100u);
}

}  // namespace
}  // namespace vpm::pipeline
