// Standalone replay driver for the fuzz harnesses.
//
// Every harness exports the libFuzzer entry point LLVMFuzzerTestOneInput;
// under clang the real fuzzer engine links in (-fsanitize=fuzzer,
// VPM_FUZZ_LIBFUZZER=ON) and this file is omitted.  Under any other
// toolchain this main() stands in: it replays the committed seed corpus
// (files or whole directories) through the harness, so the CTest `fuzz`
// label exercises every harness + corpus pair on every build — including
// the ASan job — even where libFuzzer itself is unavailable.  A crash or
// sanitizer report is the failure signal, exactly as under the real engine.
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size);

namespace {

int run_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "fuzz driver: cannot read %s\n", path.c_str());
    return 1;
  }
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  LLVMFuzzerTestOneInput(reinterpret_cast<const std::uint8_t*>(bytes.data()),
                         bytes.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <corpus-file-or-dir>...\n", argv[0]);
    return 2;
  }
  std::size_t replayed = 0;
  for (int i = 1; i < argc; ++i) {
    const std::filesystem::path arg = argv[i];
    if (std::filesystem::is_directory(arg)) {
      for (const auto& entry : std::filesystem::recursive_directory_iterator(arg)) {
        if (!entry.is_regular_file()) continue;
        if (run_file(entry.path()) != 0) return 1;
        ++replayed;
      }
    } else {
      if (run_file(arg) != 0) return 1;
      ++replayed;
    }
  }
  std::printf("fuzz driver: replayed %zu input(s) cleanly\n", replayed);
  return 0;
}
