// Seed-corpus generator for the fuzz harnesses.
//
// Emits one directory per harness under the output root (pcap/, rules/,
// patterndb/, packet/), built from the repo's own writers — so every seed
// starts structurally valid and the mutations (truncation, patched length
// fields, garbage tails) sit one bit-flip from real coverage instead of dying
// in the magic check.  Deterministic: same binary, same bytes, so the
// committed corpus is reproducible with `fuzz_make_corpus fuzz/corpus`.
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <string_view>

#include "net/flowgen.hpp"
#include "net/pcap.hpp"
#include "pattern/ruleset_gen.hpp"
#include "pattern/serialize.hpp"
#include "pattern/snort_rules.hpp"
#include "util/bytes.hpp"

namespace fs = std::filesystem;
using vpm::util::Bytes;

namespace {

void write_file(const fs::path& path, const void* data, std::size_t size) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(static_cast<const char*>(data), static_cast<std::streamsize>(size));
  if (!out) {
    std::fprintf(stderr, "make_seed_corpus: failed to write %s\n", path.c_str());
    std::exit(1);
  }
}

void write_file(const fs::path& path, const Bytes& bytes) {
  write_file(path, bytes.data(), bytes.size());
}

void write_file(const fs::path& path, std::string_view text) {
  write_file(path, text.data(), text.size());
}

// splitmix64: cheap deterministic byte stream for the script-style seeds.
std::uint64_t mix(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

Bytes random_bytes(std::uint64_t seed, std::size_t n) {
  Bytes out(n);
  std::uint64_t state = seed;
  for (std::size_t i = 0; i < n; ++i) {
    if (i % 8 == 0) state = seed + i;
    out[i] = static_cast<std::uint8_t>(mix(state) >> (8 * (i % 8)));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <corpus-root-dir>\n", argv[0]);
    return 2;
  }
  const fs::path root = argv[1];
  for (const char* sub : {"pcap", "rules", "patterndb", "packet"}) {
    fs::create_directories(root / sub);
  }

  // ---- pcap/ ----------------------------------------------------------
  {
    vpm::net::FlowGenConfig cfg;
    cfg.flow_count = 3;
    cfg.bytes_per_flow = 2000;
    cfg.mss = 300;
    cfg.reorder_fraction = 0.25;
    cfg.seed = 7;
    const Bytes plain = vpm::net::write_pcap(vpm::net::generate_flows(cfg).packets);
    write_file(root / "pcap/flows.pcap", plain);

    cfg.evasion = true;
    cfg.seed = 11;
    const Bytes evasion = vpm::net::write_pcap(vpm::net::generate_flows(cfg).packets);
    write_file(root / "pcap/evasion.pcap", evasion);

    // Mid-record truncation: valid header, last record cut short.
    Bytes truncated(plain.begin(), plain.begin() + static_cast<long>(plain.size() * 2 / 3));
    write_file(root / "pcap/truncated.pcap", truncated);

    // Lying cap_len: first record claims far more than the file holds.
    Bytes badlen = plain;
    if (badlen.size() >= 36) {
      badlen[32] = 0xFF; badlen[33] = 0xFF; badlen[34] = 0xFF; badlen[35] = 0x7F;
    }
    write_file(root / "pcap/badlen.pcap", badlen);

    // Header-only capture, and bytes that fail the magic check.
    write_file(root / "pcap/header-only.pcap", Bytes(plain.begin(), plain.begin() + 24));
    write_file(root / "pcap/garbage.bin", random_bytes(3, 96));
  }

  // ---- rules/ ---------------------------------------------------------
  {
    vpm::pattern::RulesetConfig cfg = vpm::pattern::s1_config(5);
    cfg.count = 40;
    write_file(root / "rules/generated.rules",
               vpm::pattern::render_rules(vpm::pattern::generate_ruleset(cfg)));

    write_file(root / "rules/handcrafted.rules", std::string_view(
        "# comment line\n"
        "alert tcp any any -> any 80 (msg:\"hex run\"; content:\"|de ad be ef|\"; sid:1;)\n"
        "alert tcp any any -> any any (msg:\"escapes\"; content:\"a\\;b\\\"c\\\\d\"; nocase; sid:2;)\n"
        "alert udp any any -> any 53 (msg:\"mixed\"; content:\"GET |2f 2e 2e|/\"; content:\"short\"; sid:3;)\n"
        "alert tcp any any -> any 80 (msg:\"unterminated hex\"; content:\"|de ad\"; sid:4;)\n"
        "alert tcp any any -> any 80 (msg:\"empty\"; content:\"\"; sid:5;)\n"
        "not a rule at all\n"
        "alert tcp any any -> any 80 (msg:\"no content\"; sid:6;)\n"));
  }

  // ---- patterndb/ -----------------------------------------------------
  {
    vpm::pattern::RulesetConfig cfg = vpm::pattern::s1_config(9);
    cfg.count = 24;
    const vpm::pattern::PatternSet set = vpm::pattern::generate_ruleset(cfg);

    const Bytes v1 = vpm::pattern::serialize_patterns(set);
    write_file(root / "patterndb/v1.bin", v1);

    vpm::pattern::DbHeader header;
    header.algorithm_hint = 3;
    header.fingerprint = 0x1122334455667788ull;
    const Bytes v2 = vpm::pattern::serialize_patterns(set, header);
    write_file(root / "patterndb/v2.bin", v2);

    write_file(root / "patterndb/truncated.bin",
               Bytes(v2.begin(), v2.begin() + static_cast<long>(v2.size() / 2)));

    // Implausible pattern count: the count field claims ~4 billion entries.
    Bytes badcount = v1;
    if (badcount.size() >= 12) {
      badcount[8] = 0xFF; badcount[9] = 0xFF; badcount[10] = 0xFF; badcount[11] = 0xFF;
    }
    write_file(root / "patterndb/badcount.bin", badcount);

    write_file(root / "patterndb/garbage.bin", random_bytes(17, 128));
  }

  // ---- packet/ --------------------------------------------------------
  {
    // Script seeds for fuzz_packet: pure pseudorandom streams at a few sizes
    // plus one structured script that walks every opcode with overlapping
    // offsets on one connection.
    write_file(root / "packet/random-small.bin", random_bytes(23, 64));
    write_file(root / "packet/random-medium.bin", random_bytes(29, 512));
    write_file(root / "packet/random-large.bin", random_bytes(31, 4096));

    Bytes script;
    script.push_back(0x01);  // policy=last, small budget
    const auto segment = [&script](std::uint8_t tuple_sel, std::uint16_t seq_off,
                                   std::uint8_t flags, std::uint8_t len) {
      script.push_back(0x00);  // op: segment
      script.push_back(tuple_sel);
      script.push_back(static_cast<std::uint8_t>(seq_off >> 8));
      script.push_back(static_cast<std::uint8_t>(seq_off & 0xFF));
      script.push_back(flags);
      script.push_back(len);
      for (std::uint8_t i = 0; i < len % 160; ++i) script.push_back(i);
    };
    segment(0, 0, 0x02, 0);        // SYN
    segment(0, 1, 0x18, 100);      // in-order data
    segment(0, 201, 0x18, 100);    // hole
    segment(0, 151, 0x18, 100);    // overlap bridging the hole
    segment(4, 0, 0x18, 50);       // reverse direction, mid-stream pickup
    segment(1, 0, 0x18, 120);      // second connection
    script.push_back(0x06); script.push_back(0x04);  // close conn 0 via reverse tuple
    segment(1, 50, 0x01, 0);       // FIN on connection 1
    script.push_back(0x07); script.push_back(0x01);  // evict_idle
    segment(2, 0, 0x04, 0);        // RST on fresh connection
    write_file(root / "packet/structured.bin", script);
  }

  std::printf("make_seed_corpus: wrote corpus under %s\n", root.c_str());
  return 0;
}
