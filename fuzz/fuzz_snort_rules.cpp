// Fuzz target: the Snort rule-text parser (pattern/snort_rules.cpp).
//
// Contract under arbitrary text: parse_rules never throws (malformed lines
// are counted, not fatal) and never lets one line allocate beyond the
// defensive ceilings; anything it accepts survives the pattern-set and
// serialization round trip.
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "pattern/serialize.hpp"
#include "pattern/snort_rules.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);

  std::size_t skipped = 0;
  const auto rules = vpm::pattern::parse_rules(text, &skipped);
  (void)rules;

  const vpm::pattern::PatternSet set =
      vpm::pattern::patterns_from_rules(text, vpm::pattern::ContentSelection::kAll);
  if (set.size() > 0) {
    const vpm::util::Bytes blob = vpm::pattern::serialize_patterns(set);
    (void)vpm::pattern::deserialize_patterns(blob);
  }
  return 0;
}
