// Fuzz target: the TCP reassembler's state machine (net/reassembly.cpp).
//
// The input bytes are a script: the first byte picks the overlap policy and
// a small buffering budget, then each record synthesizes one TCP segment
// (tuple from a 4-connection pool, both directions, offsets chosen to
// collide and overlap aggressively) or a lifecycle event (close, idle
// eviction).  Contract: no crash, no sanitizer report, and the pending
// window's non-overlap/budget invariants hold for ANY interleaving — the
// reassembler is the component facing attacker-sequenced input directly.
#include <cstddef>
#include <cstdint>

#include "net/packet.hpp"
#include "net/reassembly.hpp"

namespace {

struct Reader {
  const std::uint8_t* data;
  std::size_t size;
  std::size_t off = 0;

  bool done() const { return off >= size; }
  std::uint8_t u8() { return done() ? 0 : data[off++]; }
  std::uint16_t u16() { return static_cast<std::uint16_t>(u8() << 8 | u8()); }
};

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  Reader in{data, size};

  const std::uint8_t setup = in.u8();
  vpm::net::ReassemblyConfig cfg;
  cfg.overlap = static_cast<vpm::net::OverlapPolicy>(setup & 0x3);
  // Small budget so overflow paths run on tiny inputs too.
  cfg.max_buffered_bytes = 64u << (setup >> 2 & 0x7);  // 64 B .. 8 KiB

  std::uint64_t delivered = 0;
  vpm::net::TcpReassembler reasm(
      [&delivered](const vpm::net::StreamChunk& chunk) { delivered += chunk.data.size(); },
      cfg);

  // Four distinct connections; index bit 2 flips direction.
  const auto tuple_for = [](std::uint8_t sel) {
    vpm::net::FiveTuple t;
    t.src_ip = 0x0A000001u + (sel & 0x3);
    t.dst_ip = 0xC0A80001u;
    t.src_port = static_cast<std::uint16_t>(40000 + (sel & 0x3));
    t.dst_port = 80;
    return (sel & 0x4) != 0 ? t.reversed() : t;
  };

  std::uint64_t now_us = 0;
  while (!in.done()) {
    const std::uint8_t op = in.u8();
    now_us += 1000;
    switch (op & 0x7) {
      case 6: {  // explicit close (either direction's tuple)
        reasm.close_flow(tuple_for(in.u8()));
        break;
      }
      case 7: {  // idle eviction with a scripted horizon
        reasm.evict_idle(now_us, (static_cast<std::uint64_t>(in.u8()) + 1) * 500);
        break;
      }
      default: {  // synthesize one segment
        vpm::net::Packet p;
        p.timestamp_us = now_us;
        p.tuple = tuple_for(in.u8());
        // 16-bit offsets around a shared base force overlaps and holes.
        p.tcp_seq = 100000u + in.u16();
        p.tcp_flags = in.u8();
        const std::size_t len = in.u8() % 160;
        p.payload.resize(len);
        for (std::size_t i = 0; i < len; ++i) p.payload[i] = in.u8();
        reasm.ingest(p);
        break;
      }
    }
  }

  // Tear everything down through the eviction path as well.
  reasm.evict_idle(now_us + 1, 1);
  (void)delivered;
  (void)reasm.stats();
  return 0;
}
