// Fuzz target: the pcap decoder (net/pcap.cpp).
//
// Contract under arbitrary bytes: read_pcap either returns (skipping and
// counting malformed records) or throws std::invalid_argument for an
// unusable global header — never crashes, never reads out of bounds, never
// allocates proportionally to a lying length field.  Whatever it accepts
// must survive re-serialization (the decoded packets are well-formed by
// construction).
#include <cstddef>
#include <cstdint>
#include <stdexcept>

#include "net/pcap.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  try {
    const vpm::net::PcapParseResult result = vpm::net::read_pcap({data, size});
    if (!result.packets.empty()) {
      (void)vpm::net::write_pcap(result.packets);
    }
  } catch (const std::invalid_argument&) {
    // Structured rejection is the contract for a hostile header.
  }
  return 0;
}
