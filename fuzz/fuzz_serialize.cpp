// Fuzz target: the pattern-database deserializer (pattern/serialize.cpp).
//
// Contract under arbitrary bytes: deserialize_patterns either returns a
// valid set or throws std::invalid_argument — never crashes, never trusts a
// crafted count or length field, never over-reads.  Accepted sets must
// round-trip bit-exactly through serialize.
#include <cstddef>
#include <cstdint>
#include <stdexcept>

#include "pattern/serialize.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  try {
    vpm::pattern::DbHeader header;
    const vpm::pattern::PatternSet set =
        vpm::pattern::deserialize_patterns({data, size}, &header);
    (void)vpm::pattern::serialize_patterns(set);
  } catch (const std::invalid_argument&) {
    // Structured rejection is the contract.
  }
  return 0;
}
